//! A miniature training loop over the encoder layer: synthetic sequence
//! regression with SGD, demonstrating that forward + backward + update form
//! a working training pipeline (the paper's Sec. VI-C notes the optimized
//! layer "can be extended to support a full training pipeline by stacking").

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_dataflow::EncoderDims;
use xform_tensor::{Result, Shape, Tensor};

use crate::encoder::{EncoderLayer, Executor};
use crate::params::EncoderWeights;

/// Configuration of a synthetic training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of optimization steps.
    pub steps: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Dropout probability during training.
    pub dropout_p: f32,
    /// RNG seed (weights, data, dropout).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 20,
            lr: 0.05,
            dropout_p: 0.0,
            seed: 7,
        }
    }
}

/// Per-step record of a training run.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// Step index.
    pub step: usize,
    /// Mean squared error of this step's batch.
    pub loss: f32,
    /// Global gradient norm.
    pub grad_norm: f32,
}

/// Result of [`train_synthetic`].
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Final weights.
    pub weights: EncoderWeights,
    /// Per-step statistics.
    pub history: Vec<StepStats>,
}

/// The synthetic task: regress the encoder output onto a fixed random
/// target produced by a frozen "teacher" projection of the input. The task
/// is learnable (the layer can reduce the loss) yet exercises every
/// operator of the training graph, including backpropagation through
/// attention.
pub fn train_synthetic(
    dims: &EncoderDims,
    executor: Executor,
    cfg: &TrainConfig,
) -> Result<TrainResult> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut weights = EncoderWeights::init(dims, &mut rng);
    let layer = EncoderLayer::new(*dims, executor, cfg.dropout_p);
    let x_shape = Shape::from_spec("ibj", &dims.size_table())?;
    let dist = Uniform::new(-1.0f32, 1.0);
    // frozen teacher target: a fixed random tensor per batch seed
    let mut history = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let mut data_rng = StdRng::seed_from_u64(cfg.seed ^ (step as u64 % 4));
        let x = Tensor::random(x_shape.clone(), &dist, &mut data_rng);
        let target = Tensor::random(x_shape.clone(), &Uniform::new(-0.5f32, 0.5), &mut data_rng);

        let fwd_opts = xform_core::plan::ExecOptions::builder()
            .seed(rng.gen::<u64>())
            .build();
        let (y, acts) = layer.forward(&x, &weights, &fwd_opts)?.into_pair()?;
        // MSE loss: L = mean((y - t)^2); dL/dy = 2 (y - t) / N
        let n = y.len() as f32;
        let mut loss = 0.0f32;
        let mut dy = y.clone();
        for (dv, (&yv, &tv)) in dy
            .data_mut()
            .iter_mut()
            .zip(y.data().iter().zip(target.data()))
        {
            let e = yv - tv;
            loss += e * e;
            *dv = 2.0 * e / n;
        }
        loss /= n;
        let (_dx, grads) = layer.backward(&dy, &x, &weights, &acts)?;
        let grad_norm = grads.global_norm();
        weights.sgd_step(&grads, cfg.lr);
        history.push(StepStats {
            step,
            loss,
            grad_norm,
        });
    }
    Ok(TrainResult { weights, history })
}

/// Generates a batch of synthetic token embeddings (for examples).
pub fn synthetic_batch<R: Rng + ?Sized>(dims: &EncoderDims, rng: &mut R) -> Result<Tensor> {
    Ok(Tensor::random(
        Shape::from_spec("ibj", &dims.size_table())?,
        &Uniform::new(-1.0, 1.0),
        rng,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_on_synthetic_task() {
        let dims = EncoderDims::tiny();
        let cfg = TrainConfig {
            steps: 30,
            lr: 0.05,
            dropout_p: 0.0,
            seed: 11,
        };
        let result = train_synthetic(&dims, Executor::Fused, &cfg).unwrap();
        let first = result.history[0].loss;
        let last = result.history.last().unwrap().loss;
        assert!(
            last < first * 0.9,
            "training did not reduce loss: {first} -> {last}"
        );
        assert!(result.history.iter().all(|s| s.loss.is_finite()));
        assert!(result.history.iter().all(|s| s.grad_norm.is_finite()));
    }

    #[test]
    fn reference_and_fused_training_agree_without_dropout() {
        let dims = EncoderDims::tiny();
        let cfg = TrainConfig {
            steps: 5,
            lr: 0.05,
            dropout_p: 0.0,
            seed: 13,
        };
        let a = train_synthetic(&dims, Executor::Fused, &cfg).unwrap();
        let b = train_synthetic(&dims, Executor::Reference, &cfg).unwrap();
        for (sa, sb) in a.history.iter().zip(&b.history) {
            assert!(
                (sa.loss - sb.loss).abs() < 1e-4,
                "step {}: {} vs {}",
                sa.step,
                sa.loss,
                sb.loss
            );
        }
    }

    #[test]
    fn training_with_dropout_stays_finite() {
        let dims = EncoderDims::tiny();
        let cfg = TrainConfig {
            steps: 10,
            lr: 0.02,
            dropout_p: 0.2,
            seed: 17,
        };
        let result = train_synthetic(&dims, Executor::Fused, &cfg).unwrap();
        assert!(result.history.iter().all(|s| s.loss.is_finite()));
        assert!(result.weights.global_norm().is_finite());
    }
}
