//! BERT encoder layer on the CPU tensor substrate.
//!
//! Executable counterpart to the dataflow graphs of `xform-dataflow`: the
//! full forward **and** backward pass of a BERT encoder layer (multi-head
//! self-attention + feed-forward, with dropout, layer norm and residuals),
//! in two interchangeable executors — [`encoder::Executor::Reference`]
//! (one unfused operator per dataflow node, the eager-framework baseline)
//! and [`encoder::Executor::Fused`] (the paper's twelve fused kernels).
//! Both are validated against each other and against numerical gradients.
//!
//! Every layer exposes **one** forward entry point,
//! `forward(&x, &weights, &ExecOptions)`: the
//! [`xform_core::plan::ExecOptions`] argument selects serial vs.
//! certified wave-parallel execution (`threads`), an explicit plan
//! override (`plan`), sanitized execution (`sanitize`), activation
//! collection (`collect_activations`) and an optional runtime profiler
//! sink (`profiler`).
//!
//! * [`params`] — encoder weights/gradients and SGD;
//! * [`encoder`] — the layer itself;
//! * [`decoder`] — the GPT-2-style causal variant;
//! * [`decode`] — streaming KV-cache decoding ([`decode::DecodeSession`]):
//!   prefill once, then token-at-a-time steps over persistent per-layer
//!   cache slabs, bitwise-equal to the full-sequence forward and
//!   allocation-free in the steady state;
//! * [`mha`] — standalone general multi-head attention (Fig. 1);
//! * [`training`] — a miniature synthetic training loop.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use xform_core::plan::ExecOptions;
//! use xform_dataflow::EncoderDims;
//! use xform_transformer::encoder::{EncoderLayer, Executor};
//! use xform_transformer::params::EncoderWeights;
//! use xform_transformer::training::synthetic_batch;
//! # fn main() -> xform_tensor::Result<()> {
//! let dims = EncoderDims::tiny();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let weights = EncoderWeights::init(&dims, &mut rng);
//! let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
//! let x = synthetic_batch(&dims, &mut rng)?;
//! let opts = ExecOptions::builder().seed(42).build();
//! let (y, acts) = layer.forward(&x, &weights, &opts)?.into_pair()?;
//! let (dx, grads) = layer.backward(&y, &x, &weights, &acts)?;
//! assert_eq!(dx.shape(), x.shape());
//! assert_eq!(grads.w1.shape(), weights.w1.shape());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod decode;
pub mod decoder;
pub mod encoder;
pub mod interp;
pub mod mha;
pub mod model;
pub mod optim;
pub mod params;
pub mod training;
