//! Streaming KV-cache decoding: a [`DecodeSession`] owns per-layer
//! persistent K/V cache slabs and drives token-at-a-time generation with
//! zero steady-state heap allocations.
//!
//! A decode step splits into three certified phases:
//!
//! 1. **project** — the [`crate::interp::PlanKind::DecoderStepProject`]
//!    plan layer-norms the incoming token column and computes the
//!    `qq_new`/`kk_new`/`vv_new` projection columns (one shared stateless
//!    arena, reused by every layer);
//! 2. **append** — the session writes `kk_new`/`vv_new` into the layer's
//!    resident cache slabs at column `pos`, through the bounds-checked
//!    [`xform_core::access::column_span`] license of the plan's
//!    [`xform_core::access::DecodeCertificate`]. The append happens
//!    *before* attention, so the query's own key is visible to its own
//!    scores — exactly the diagonal of the full-sequence causal mask;
//! 3. **attend** — the [`crate::interp::PlanKind::DecoderStep`] plan
//!    forms scores against the whole cache (capacity `C`), masks columns
//!    past `pos` to exact `0.0` via the position-shifted causal softmax
//!    ([`xform_core::arena::ArenaRun::pos`]), and runs the rest of the
//!    block. The caches are [`xform_dataflow::DataRole::Cache`] inputs:
//!    live-in/live-out of every run, never recolored over, provably never
//!    written by any plan step ([`xform_core::access::certify_decode`]).
//!
//! Because every fused kernel is shared with the full-sequence decoder
//! forward and padded cache columns only ever contribute masked-to-zero
//! terms, the incremental path is **bitwise** identical to running the
//! full prefix through [`crate::decoder::DecoderLayer`] and reading the
//! last column — the property `tests/decode_equivalence.rs` fuzzes.
//!
//! Step plans are compiled per position *bucket* (capacity rounded up to
//! [`xform_core::env::decode_bucket`] positions), so steady-state decoding
//! re-plans only when the sequence outgrows its bucket; between growths a
//! step is two arena executions plus two column `memcpy`s.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_core::access::{certify_decode, column_span, DecodeCertificate};
use xform_core::analyze::{analyze, ArenaGranularity};
use xform_core::arena::{ArenaArtifact, ArenaOutcome, ArenaRun, CompiledArena};
use xform_core::plan::ExecOptions;
use xform_dataflow::EncoderDims;
use xform_tensor::ops::elementwise::{bias_add, ActivationKind};
use xform_tensor::{into_ops, Result, Shape, Tensor, TensorError};

use crate::interp::{self, bind_inputs, run_plan, PlanKind};
use crate::model::TransformerModel;
use crate::params::EncoderWeights;

/// How [`DecodeSession::sample`] turns a logit column into a token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Argmax over the vocabulary; ties break to the lowest token id.
    /// Draws nothing from the session RNG.
    Greedy,
    /// Softmax sampling at the given temperature, optionally restricted
    /// to the `top_k` highest-logit tokens. Draws exactly one `f32` from
    /// the session RNG per batch row per step, so the RNG end state
    /// depends only on the number of sampled tokens — never on thread
    /// count or bucket geometry.
    Temperature {
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Restrict sampling to this many highest-logit tokens.
        top_k: Option<usize>,
    },
}

/// Session construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct DecodeOptions {
    /// Threads for the *prefill* pass (steps always run the serial
    /// arenas; step values are thread-invariant regardless).
    pub threads: usize,
    /// Seed for the session's sampling RNG.
    pub seed: u64,
    /// Position-bucket quantum override
    /// (default: [`xform_core::env::decode_bucket`]).
    pub bucket: Option<usize>,
    /// Maximum sequence length override (default: the positional
    /// embedding extent `dims.j`; never above it).
    pub max_seq: Option<usize>,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            threads: 1,
            seed: 0x5eed,
            bucket: None,
            max_seq: None,
        }
    }
}

/// The per-bucket compiled state: one shared attend plan and one
/// *private* arena per layer, because each layer's arena slab holds that
/// layer's resident K/V cache between calls.
#[derive(Debug)]
struct AttendBucket {
    cert: DecodeCertificate,
    arenas: Vec<CompiledArena>,
    capacity: usize,
}

/// A streaming decode session over a [`TransformerModel`] with decoder
/// blocks. See the module docs for the three-phase step anatomy.
#[derive(Debug)]
pub struct DecodeSession<'m> {
    model: &'m TransformerModel,
    threads: usize,
    bucket: usize,
    max_seq: usize,
    scaler: f32,
    /// Next position to write (= number of resident cache columns).
    pos: usize,
    attend: Option<AttendBucket>,
    project: Option<CompiledArena>,
    /// Current hidden column `[i,b,1]`; input to the next layer.
    h_cur: Tensor,
    /// Next hidden column (the attend plan's `y`).
    h_next: Tensor,
    /// Projection staging columns (`[p,h,b]` / `[w,h,b]` dense).
    qq_col: Vec<f32>,
    kk_col: Vec<f32>,
    vv_col: Vec<f32>,
    /// Logit column `[v,b,1]` of the last step.
    logits: Tensor,
    rng: StdRng,
    idx_scratch: Vec<usize>,
    prob_scratch: Vec<f32>,
}

fn round_up(n: usize, quantum: usize) -> usize {
    n.div_ceil(quantum.max(1)) * quantum.max(1)
}

fn unsupported(msg: impl Into<String>) -> TensorError {
    TensorError::Unsupported(msg.into())
}

impl<'m> DecodeSession<'m> {
    /// Creates an idle session. Call [`DecodeSession::prefill`] before
    /// stepping.
    ///
    /// # Errors
    ///
    /// Returns an error if the model is not a decoder stack or its
    /// dimensions are empty.
    pub fn new(model: &'m TransformerModel, opts: DecodeOptions) -> Result<Self> {
        if model.config.block != crate::model::BlockKind::Decoder {
            return Err(unsupported("decode sessions require decoder blocks"));
        }
        let d = model.config.dims;
        let max_seq = opts.max_seq.unwrap_or(d.j).min(d.j).max(1);
        let bucket = opts
            .bucket
            .unwrap_or_else(xform_core::env::decode_bucket)
            .max(1);
        let col = Shape::new([('i', d.i), ('b', d.b), ('j', 1)])?;
        let logits = Tensor::zeros(Shape::new([
            ('v', model.config.vocab),
            ('b', d.b),
            ('j', 1),
        ])?);
        Ok(DecodeSession {
            model,
            threads: opts.threads.max(1),
            bucket,
            max_seq,
            scaler: 1.0 / (d.p as f32).sqrt(),
            pos: 0,
            attend: None,
            project: None,
            h_cur: Tensor::zeros(col.clone()),
            h_next: Tensor::zeros(col),
            qq_col: vec![0.0; d.p * d.h * d.b],
            kk_col: vec![0.0; d.p * d.h * d.b],
            vv_col: vec![0.0; d.p * d.h * d.b],
            logits,
            rng: StdRng::seed_from_u64(opts.seed),
            idx_scratch: Vec::with_capacity(model.config.vocab),
            prob_scratch: Vec::with_capacity(model.config.vocab),
        })
    }

    /// Number of resident positions (= the next position to decode).
    pub fn len(&self) -> usize {
        self.pos
    }

    /// `true` before [`DecodeSession::prefill`] has seeded the caches.
    pub fn is_empty(&self) -> bool {
        self.pos == 0
    }

    /// Current cache capacity in positions (the bucket the step plans are
    /// compiled for).
    pub fn capacity(&self) -> usize {
        self.attend.as_ref().map_or(0, |a| a.capacity)
    }

    /// The decode certificate of the current bucket's attend plan: proof
    /// no plan step writes the caches, plus each cache's column geometry.
    pub fn decode_certificate(&self) -> Option<&DecodeCertificate> {
        self.attend.as_ref().map(|a| &a.cert)
    }

    /// Resident arena bytes across all layers (cache slabs included) plus
    /// the shared projection arena.
    pub fn resident_bytes(&self) -> usize {
        let attend: usize = self
            .attend
            .as_ref()
            .map_or(0, |a| a.arenas.iter().map(CompiledArena::slab_bytes).sum());
        attend + self.project.as_ref().map_or(0, |p| p.slab_bytes())
    }

    /// One draw from the sampling RNG — a cheap end-state fingerprint for
    /// determinism tests. Advances the RNG.
    pub fn rng_fingerprint(&mut self) -> u64 {
        self.rng.gen()
    }

    fn step_dims(&self, capacity: usize) -> EncoderDims {
        let d = self.model.config.dims;
        EncoderDims {
            b: d.b,
            j: 1,
            k: capacity,
            h: d.h,
            p: d.p,
            i: d.i,
            u: d.u,
        }
    }

    /// Head logits of the hidden column `h[i,b,0]`, replicating the exact
    /// accumulation of `einsum("vi,ibj->vbj")` + `bias_add`: per output
    /// element, products accumulate over `i` ascending from `0.0`, then
    /// the bias is added — bitwise the full-sequence head at any length.
    fn head_column(&mut self) {
        let d = self.model.config.dims;
        let v = self.model.config.vocab;
        let head = self.model.head.data();
        let bias = self.model.head_bias.data();
        let h = self.h_cur.data();
        let out = self.logits.data_mut();
        for vi in 0..v {
            let row = &head[vi * d.i..(vi + 1) * d.i];
            for b in 0..d.b {
                let mut acc = 0.0f32;
                for (i, &w) in row.iter().enumerate() {
                    acc += w * h[i * d.b + b];
                }
                out[vi * d.b + b] = acc + bias[vi];
            }
        }
    }

    /// Compiles the attend bucket at `capacity`: shared plan (memoized
    /// per bucket in the global plan cache), decode certificate, and one
    /// private serial arena per layer whose zero-initialized slab holds
    /// that layer's cache columns.
    fn build_bucket(&self, capacity: usize) -> Result<AttendBucket> {
        let dims = self.step_dims(capacity);
        let plan = interp::cached_plan(&dims, PlanKind::DecoderStep)?;
        let cert = certify_decode(&plan.graph, &plan.plan).map_err(|lints| {
            unsupported(format!(
                "decode step plan failed cache-freeze certification: {:?}",
                lints.iter().map(ToString::to_string).collect::<Vec<_>>()
            ))
        })?;
        let analysis = analyze(&plan.graph, &plan.plan);
        let mut arenas = Vec::with_capacity(self.model.blocks.len());
        for _ in 0..self.model.blocks.len() {
            let arena = CompiledArena::compile(
                &plan.graph,
                &plan.plan,
                &analysis,
                ArenaGranularity::Serial,
            )?
            .ok_or_else(|| unsupported("decode attend plan is not arena-compilable"))?;
            arenas.push(arena);
        }
        Ok(AttendBucket {
            cert,
            arenas,
            capacity,
        })
    }

    /// The shared projection arena (stateless — reused by every layer).
    fn build_project(&self) -> Result<CompiledArena> {
        let dims = self.step_dims(1);
        let plan = interp::cached_plan(&dims, PlanKind::DecoderStepProject)?;
        let analysis = analyze(&plan.graph, &plan.plan);
        CompiledArena::compile(&plan.graph, &plan.plan, &analysis, ArenaGranularity::Serial)?
            .ok_or_else(|| unsupported("decode project plan is not arena-compilable"))
    }

    fn arena_run(&self) -> ArenaRun {
        ArenaRun {
            dropout_p: 0.0,
            activation: ActivationKind::Gelu,
            scaler: self.scaler,
            seed: 0,
            threads: 1,
            sanitize: xform_core::arena::env_sanitize_cached(),
            pos: self.pos,
        }
    }

    /// Runs the prompt through every layer with the full-width
    /// [`PlanKind::DecoderPrefill`] plan, seeds the per-layer caches from
    /// the saved `kk`/`vv` projections, and returns the prompt's logits
    /// (`[v,b,S]`) — bitwise the full-sequence forward's logits.
    ///
    /// Allocates freely (it runs once per session); only the *step* path
    /// is allocation-free.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements, on a prompt longer than
    /// `max_seq`, or if the session was already prefilled.
    pub fn prefill(&mut self, prompt: &[Vec<usize>]) -> Result<Tensor> {
        if self.pos != 0 {
            return Err(unsupported("session already prefilled"));
        }
        let d = self.model.config.dims;
        let s = prompt.first().map_or(0, Vec::len);
        if s == 0 || prompt.len() != d.b || prompt.iter().any(|r| r.len() != s) {
            return Err(TensorError::ShapeMismatch {
                context: "prefill prompt batch",
            });
        }
        if s > self.max_seq {
            return Err(unsupported(format!(
                "prompt of {s} tokens exceeds max_seq {}",
                self.max_seq
            )));
        }

        // embed the whole prompt
        let mut x = Tensor::zeros(Shape::new([('i', d.i), ('b', d.b), ('j', s)])?);
        for (b, row) in prompt.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                if t >= self.model.config.vocab {
                    return Err(unsupported(format!("token id {t} out of vocabulary")));
                }
                for i in 0..d.i {
                    let v = self.model.embedding.at(&[t, i]) + self.model.positional.at(&[j, i]);
                    x.set(&[i, b, j], v);
                }
            }
        }

        let mut prefill_dims = d;
        prefill_dims.j = s;
        prefill_dims.k = s;
        let pf = interp::cached_plan(&prefill_dims, PlanKind::DecoderPrefill)?;

        let capacity = round_up(s + 1, self.bucket);
        let bucket = self.build_bucket(capacity)?;
        let project = self.build_project()?;

        let opts = ExecOptions::builder()
            .activation(ActivationKind::Gelu)
            .scaler(self.scaler)
            .threads(self.threads)
            .build();
        let mut h = x;
        for (l, w) in self.model.blocks.iter().enumerate() {
            let mut state = bind_inputs(&h, w)?;
            run_plan(&pf.graph, &pf.plan, Some(&pf.cert), &mut state, &opts)?;
            // seed this layer's cache columns from the saved projections:
            // kk [p,h,b,k] → k_cache column k = contiguous [p,h,b]
            let kk = state.get("kk")?;
            let vv = state.get("vv")?;
            let col = d.p * d.h * d.b;
            let seed_cache = |name: &str, src: &Tensor| -> Result<()> {
                let span = column_span(&bucket.cert, name, 0, s)
                    .ok_or_else(|| unsupported(format!("prompt escapes `{name}` capacity")))?;
                bucket.arenas[l]
                    .with_external_mut(name, |dst| {
                        let dst = &mut dst[span.clone()];
                        let data = src.data();
                        for k in 0..s {
                            for phb in 0..col {
                                // src index: phb-major, k innermost
                                dst[k * col + phb] = data[phb * s + k];
                            }
                        }
                    })
                    .ok_or_else(|| unsupported(format!("cache `{name}` missing from arena")))
            };
            seed_cache("k_cache", kk)?;
            seed_cache("v_cache", vv)?;
            h = state.take("y")?;
        }

        let logits = bias_add(
            &xform_tensor::einsum("vi,ibj->vbj", &[&self.model.head, &h])?,
            &self.model.head_bias,
        )?;
        // stage the last prompt column as the current logit column so
        // sampling can start immediately
        let data = logits.data();
        let out = self.logits.data_mut();
        for vi in 0..self.model.config.vocab {
            for b in 0..d.b {
                out[vi * d.b + b] = data[(vi * d.b + b) * s + (s - 1)];
            }
        }
        self.attend = Some(bucket);
        self.project = Some(project);
        self.pos = s;
        Ok(logits)
    }

    /// Grows the cache bucket to hold at least `need` positions,
    /// recompiling the step plans and migrating the resident columns.
    fn grow(&mut self, need: usize) -> Result<()> {
        let capacity = round_up(need, self.bucket);
        let next = self.build_bucket(capacity)?;
        let old = self
            .attend
            .as_ref()
            .ok_or_else(|| unsupported("session not prefilled"))?;
        let d = self.model.config.dims;
        let live = self.pos * d.p * d.h * d.b;
        for (src, dst) in old.arenas.iter().zip(&next.arenas) {
            for name in ["k_cache", "v_cache"] {
                src.with_external(name, |s| {
                    dst.with_external_mut(name, |d| d[..live].copy_from_slice(&s[..live]))
                })
                .flatten()
                .ok_or_else(|| unsupported(format!("cache `{name}` migration failed")))?;
            }
        }
        self.attend = Some(next);
        Ok(())
    }

    /// Decodes one token column: embeds `tokens` (one id per batch row)
    /// at the current position, runs project → append → attend through
    /// every layer, and leaves the new position's logits in
    /// [`DecodeSession::last_logits`]. Steady-state (no bucket growth)
    /// this allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns an error before prefill, past `max_seq`, on a bad token
    /// id, or if an arena invariant breaks (busy buffers, missing
    /// outputs).
    pub fn advance(&mut self, tokens: &[usize]) -> Result<&Tensor> {
        if self.attend.is_none() {
            return Err(unsupported("call prefill before advance"));
        }
        if self.pos >= self.max_seq {
            return Err(unsupported(format!(
                "sequence is at max_seq {} — cannot decode further",
                self.max_seq
            )));
        }
        if self.pos >= self.capacity() {
            self.grow(self.pos + 1)?;
        }
        let pos = self.pos;
        let model = self.model;
        let d = model.config.dims;
        if tokens.len() != d.b {
            return Err(TensorError::ShapeMismatch {
                context: "decode step batch",
            });
        }
        let run = self.arena_run();
        {
            let out = &mut self.h_cur;
            for (b, &t) in tokens.iter().enumerate() {
                if t >= model.config.vocab {
                    return Err(unsupported(format!("token id {t} out of vocabulary")));
                }
                for i in 0..d.i {
                    let v = model.embedding.at(&[t, i]) + model.positional.at(&[pos, i]);
                    out.set(&[i, b, 0], v);
                }
            }
        }

        let bucket = self.attend.as_ref().expect("checked above");
        let project = self.project.as_ref().expect("built with bucket");
        for (l, w) in model.blocks.iter().enumerate() {
            // phase 1: project the new column
            {
                let h = &self.h_cur;
                let mut bind =
                    |name: &str, dst: &mut [f32]| -> bool { bind_weight(name, dst, h, None, w) };
                let qq = &mut self.qq_col;
                let kk = &mut self.kk_col;
                let vv = &mut self.vv_col;
                let mut sink = |a: ArenaArtifact<'_>| {
                    if let ArenaArtifact::Tensor { name, data, .. } = a {
                        let dst = match name {
                            "qq_new" => &mut *qq,
                            "kk_new" => &mut *kk,
                            "vv_new" => &mut *vv,
                            _ => return,
                        };
                        if data.len() == dst.len() {
                            dst.copy_from_slice(data);
                        }
                    }
                };
                match project.execute_bound(&run, &mut bind, &mut sink)? {
                    ArenaOutcome::Ran => {}
                    ArenaOutcome::Busy => {
                        return Err(unsupported("decode project arena busy"));
                    }
                }
            }
            // phase 2: append the new cache columns at `pos` under the
            // decode certificate's bounds-checked column license
            let arena = &bucket.arenas[l];
            for (name, col) in [("k_cache", &self.kk_col), ("v_cache", &self.vv_col)] {
                let span = column_span(&bucket.cert, name, pos, 1)
                    .ok_or_else(|| unsupported(format!("position {pos} escapes `{name}`")))?;
                arena
                    .with_external_mut(name, |slab| {
                        slab[span.clone()].copy_from_slice(col);
                    })
                    .ok_or_else(|| unsupported(format!("cache `{name}` unavailable")))?;
            }
            // phase 3: attend over the resident cache
            {
                let h = &self.h_cur;
                let qq = &self.qq_col;
                let mut bind = |name: &str, dst: &mut [f32]| -> bool {
                    bind_weight(name, dst, h, Some(qq), w)
                };
                let out = self.h_next.data_mut();
                let mut wrote = false;
                let mut sink = |a: ArenaArtifact<'_>| {
                    if let ArenaArtifact::Tensor {
                        name: "y", data, ..
                    } = a
                    {
                        if data.len() == out.len() {
                            out.copy_from_slice(data);
                            wrote = true;
                        }
                    }
                };
                match arena.execute_bound(&run, &mut bind, &mut sink)? {
                    ArenaOutcome::Ran if wrote => {}
                    ArenaOutcome::Ran => {
                        return Err(unsupported("attend arena produced no `y`"));
                    }
                    ArenaOutcome::Busy => {
                        return Err(unsupported("decode attend arena busy"));
                    }
                }
            }
            std::mem::swap(&mut self.h_cur, &mut self.h_next);
        }
        self.head_column();
        self.pos += 1;
        Ok(&self.logits)
    }

    /// The logit column (`[v,b,1]`) of the most recently decoded position
    /// (after [`DecodeSession::prefill`]: the last prompt position).
    pub fn last_logits(&self) -> &Tensor {
        &self.logits
    }

    /// Samples one token per batch row from [`DecodeSession::last_logits`]
    /// into `out`, drawing from the session RNG per the [`Sampling`]
    /// policy. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns an error on a bad temperature or output length.
    pub fn sample(&mut self, sampling: Sampling, out: &mut [usize]) -> Result<()> {
        let d = self.model.config.dims;
        let v = self.model.config.vocab;
        if out.len() != d.b {
            return Err(TensorError::ShapeMismatch {
                context: "sample output batch",
            });
        }
        let logits = self.logits.data();
        for (b, slot) in out.iter_mut().enumerate() {
            *slot = match sampling {
                Sampling::Greedy => {
                    let mut best = 0usize;
                    let mut best_l = logits[b];
                    for vi in 1..v {
                        let l = logits[vi * d.b + b];
                        if l > best_l {
                            best = vi;
                            best_l = l;
                        }
                    }
                    best
                }
                Sampling::Temperature { temperature, top_k } => {
                    if temperature <= 0.0 || !temperature.is_finite() {
                        return Err(unsupported("temperature must be finite and positive"));
                    }
                    let k = top_k.unwrap_or(v).clamp(1, v);
                    self.idx_scratch.clear();
                    self.idx_scratch.extend(0..v);
                    let col = |vi: usize| logits[vi * d.b + b];
                    self.idx_scratch.sort_unstable_by(|&a, &c| {
                        col(c)
                            .partial_cmp(&col(a))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&c))
                    });
                    let m = col(self.idx_scratch[0]);
                    self.prob_scratch.clear();
                    let mut sum = 0.0f32;
                    for &vi in &self.idx_scratch[..k] {
                        let p = ((col(vi) - m) / temperature).exp();
                        sum += p;
                        self.prob_scratch.push(p);
                    }
                    // exactly one draw per row, independent of k
                    let u = self.rng.gen::<f32>() * sum;
                    let mut acc = 0.0f32;
                    let mut picked = self.idx_scratch[k - 1];
                    for (i, &p) in self.prob_scratch.iter().enumerate() {
                        acc += p;
                        if u <= acc {
                            picked = self.idx_scratch[i];
                            break;
                        }
                    }
                    picked
                }
            };
        }
        Ok(())
    }

    /// Prefills with `prompt` and generates `steps` tokens per batch row
    /// under the sampling policy. Returns the generated ids
    /// (`[b][steps]`).
    ///
    /// # Errors
    ///
    /// Returns an error if `prompt.len + steps - 1` exceeds `max_seq` or
    /// any step fails.
    pub fn generate(
        &mut self,
        prompt: &[Vec<usize>],
        steps: usize,
        sampling: Sampling,
    ) -> Result<Vec<Vec<usize>>> {
        if steps == 0 {
            return Ok(vec![Vec::new(); self.model.config.dims.b]);
        }
        self.prefill(prompt)?;
        let b = self.model.config.dims.b;
        let mut out = vec![Vec::with_capacity(steps); b];
        let mut step_tokens = vec![0usize; b];
        self.sample(sampling, &mut step_tokens)?;
        for (row, &t) in out.iter_mut().zip(&step_tokens) {
            row.push(t);
        }
        for _ in 1..steps {
            self.advance(&step_tokens)?;
            self.sample(sampling, &mut step_tokens)?;
            for (row, &t) in out.iter_mut().zip(&step_tokens) {
                row.push(t);
            }
        }
        Ok(out)
    }
}

/// Shared external-bind logic for the decode step arenas: the hidden
/// column `x`, the optional projected `qq` column, the stacked `w_qkv`
/// region, and every per-layer weight. Returning `false` for the cache
/// containers keeps their resident slab contents (the whole point of
/// [`xform_dataflow::DataRole::Cache`]).
fn bind_weight(
    name: &str,
    dst: &mut [f32],
    x: &Tensor,
    qq: Option<&[f32]>,
    w: &EncoderWeights,
) -> bool {
    let src: &Tensor = match name {
        "k_cache" | "v_cache" => return false,
        "x" => x,
        "qq" => {
            let Some(q) = qq else { return false };
            if q.len() != dst.len() {
                return false;
            }
            dst.copy_from_slice(q);
            return true;
        }
        "w_qkv" => {
            let (nq, nk) = (w.wq.len(), w.wk.len());
            if dst.len() != nq + nk + w.wv.len() {
                return false;
            }
            into_ops::copy_tensor_into(&w.wq, &mut dst[..nq]);
            into_ops::copy_tensor_into(&w.wk, &mut dst[nq..nq + nk]);
            into_ops::copy_tensor_into(&w.wv, &mut dst[nq + nk..]);
            return true;
        }
        "bq" => &w.bq,
        "bk" => &w.bk,
        "bv" => &w.bv,
        "wo" => &w.wo,
        "bo" => &w.bo,
        "ln1_gamma" => &w.ln1_gamma,
        "ln1_beta" => &w.ln1_beta,
        "w1" => &w.w1,
        "b1" => &w.b1,
        "w2" => &w.w2,
        "b2" => &w.b2,
        "ln2_gamma" => &w.ln2_gamma,
        "ln2_beta" => &w.ln2_beta,
        _ => return false,
    };
    if src.len() != dst.len() {
        return false;
    }
    into_ops::copy_tensor_into(src, dst);
    true
}
