//! Weight checkpointing: a small self-describing binary format for saving
//! and restoring [`EncoderWeights`] (and through them, whole models).
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "XFCK"            4 bytes
//! version u32              currently 1
//! count   u32              number of tensors
//! per tensor:
//!   name_len u32, name bytes (UTF-8)
//!   rank u32
//!   per axis: name u8 (ASCII), size u64
//!   data: len·f32 little-endian
//! ```
//!
//! No external serialization dependency is needed; round-trips are exact
//! because `f32` bits are written verbatim.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use xform_tensor::{Shape, Tensor};

use crate::params::EncoderWeights;

const MAGIC: &[u8; 4] = b"XFCK";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a checkpoint or is corrupt.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes named tensors to `w` in checkpoint format.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_tensors<W: Write>(
    w: &mut W,
    tensors: &[(&str, &Tensor)],
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, tensors.len() as u32)?;
    for (name, t) in tensors {
        write_u32(w, name.len() as u32)?;
        w.write_all(name.as_bytes())?;
        write_u32(w, t.shape().rank() as u32)?;
        for (a, &n) in t.shape().axes().iter().zip(t.shape().sizes()) {
            w.write_all(&[a.name() as u8])?;
            write_u64(w, n as u64)?;
        }
        // write in logical row-major order so layout never leaks into files
        let mut idx = vec![0usize; t.shape().rank()];
        loop {
            w.write_all(&t.at(&idx).to_le_bytes())?;
            if !t.advance(&mut idx) {
                break;
            }
        }
    }
    Ok(())
}

/// Reads named tensors from `r` (row-major layouts).
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for malformed files.
pub fn read_tensors<R: Read>(r: &mut R) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(r)?;
    if count > 1 << 20 {
        return Err(CheckpointError::Format("implausible tensor count".into()));
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Format("implausible name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("name is not UTF-8".into()))?;
        let rank = read_u32(r)? as usize;
        if rank > 16 {
            return Err(CheckpointError::Format("implausible rank".into()));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut c = [0u8; 1];
            r.read_exact(&mut c)?;
            let n = read_u64(r)? as usize;
            dims.push((c[0] as char, n));
        }
        let shape =
            Shape::new(dims).map_err(|e| CheckpointError::Format(format!("bad shape: {e}")))?;
        let len = shape.num_elements();
        if len > 1 << 30 {
            return Err(CheckpointError::Format("implausible tensor size".into()));
        }
        let mut data = vec![0f32; len];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        let t = Tensor::from_vec(shape, data)
            .map_err(|e| CheckpointError::Format(format!("bad tensor: {e}")))?;
        out.push((name, t));
    }
    Ok(out)
}

impl EncoderWeights {
    /// Saves the weights to a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut w = BufWriter::new(File::create(path)?);
        write_tensors(&mut w, &self.fields())?;
        w.flush()?;
        Ok(())
    }

    /// Loads weights from a checkpoint file, matching tensors by name.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] if a field is missing or has
    /// the wrong shape.
    pub fn load(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let mut r = BufReader::new(File::open(path)?);
        let tensors = read_tensors(&mut r)?;
        for (name, field) in self.fields_mut() {
            let (_, t) = tensors
                .iter()
                .find(|(n, _)| n == name)
                .ok_or_else(|| CheckpointError::Format(format!("missing field `{name}`")))?;
            if t.shape() != field.shape() {
                return Err(CheckpointError::Format(format!(
                    "shape mismatch for `{name}`: file {} vs model {}",
                    t.shape(),
                    field.shape()
                )));
            }
            *field = t.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_dataflow::EncoderDims;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("xfck-test-{name}-{}", std::process::id()))
    }

    #[test]
    fn weights_roundtrip_exactly() {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let w = EncoderWeights::init(&dims, &mut rng);
        let path = tmp("roundtrip");
        w.save(&path).unwrap();
        let mut w2 = EncoderWeights::init(&dims, &mut rng); // different values
        w2.load(&path).unwrap();
        for ((n, a), (_, b)) in w.fields().iter().zip(w2.fields()) {
            assert_eq!(a.data(), b.data(), "field {n} not identical");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn layout_never_leaks_into_files() {
        // a tensor saved in a permuted layout reads back row-major with the
        // same logical values
        let shape = Shape::new([('a', 3), ('b', 4)]).unwrap();
        let t = Tensor::from_fn(shape.clone(), |i| (i[0] * 10 + i[1]) as f32);
        let permuted = t.relayout(&xform_tensor::Layout::from_axis_order(&shape, "ba").unwrap());
        let mut buf = Vec::new();
        write_tensors(&mut buf, &[("t", &permuted)]).unwrap();
        let back = read_tensors(&mut buf.as_slice()).unwrap();
        assert_eq!(back[0].1.max_abs_diff(&t).unwrap(), 0.0);
        assert_eq!(back[0].1.layout(), &xform_tensor::Layout::row_major(2));
    }

    #[test]
    fn rejects_corruption() {
        let mut buf = Vec::new();
        write_tensors(&mut buf, &[]).unwrap();
        buf[0] = b'Z'; // break magic
        assert!(matches!(
            read_tensors(&mut buf.as_slice()),
            Err(CheckpointError::Format(_))
        ));
        // truncated file
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let w = EncoderWeights::init(&dims, &mut rng);
        let mut full = Vec::new();
        write_tensors(&mut full, &w.fields()).unwrap();
        full.truncate(full.len() / 2);
        assert!(read_tensors(&mut full.as_slice()).is_err());
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let w = EncoderWeights::init(&dims, &mut rng);
        let path = tmp("mismatch");
        w.save(&path).unwrap();
        let other = EncoderDims {
            u: dims.u + 1,
            ..dims
        };
        let mut w2 = EncoderWeights::init(&other, &mut rng);
        assert!(matches!(w2.load(&path), Err(CheckpointError::Format(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn training_resumes_from_checkpoint() {
        use crate::training::{train_synthetic, TrainConfig};
        let dims = EncoderDims::tiny();
        let cfg = TrainConfig {
            steps: 5,
            lr: 0.05,
            dropout_p: 0.0,
            seed: 9,
        };
        let result = train_synthetic(&dims, crate::encoder::Executor::Fused, &cfg).unwrap();
        let path = tmp("resume");
        result.weights.save(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut restored = EncoderWeights::init(&dims, &mut rng);
        restored.load(&path).unwrap();
        assert!((restored.global_norm() - result.weights.global_norm()).abs() < 1e-5);
        std::fs::remove_file(path).ok();
    }
}
