//! Encoder-layer parameters and gradients.

use rand::distributions::Uniform;
use rand::Rng;

use xform_dataflow::EncoderDims;
use xform_tensor::{Shape, Tensor};

/// All learned parameters of one BERT encoder layer, in the paper's axis
/// convention (`phi`/`whi` projections, `ph`/`wh`/`i` biases, `ui`/`iu`
/// feed-forward weights, `i`-sized layer-norm scale/shift).
#[derive(Debug, Clone)]
pub struct EncoderWeights {
    /// Query projection `[p, h, i]`.
    pub wq: Tensor,
    /// Key projection `[p, h, i]`.
    pub wk: Tensor,
    /// Value projection `[w, h, i]`.
    pub wv: Tensor,
    /// Output projection `[w, h, i]`.
    pub wo: Tensor,
    /// Query bias `[p, h]`.
    pub bq: Tensor,
    /// Key bias `[p, h]`.
    pub bk: Tensor,
    /// Value bias `[w, h]`.
    pub bv: Tensor,
    /// Attention output bias `[i]`.
    pub bo: Tensor,
    /// First layer-norm scale `[i]`.
    pub ln1_gamma: Tensor,
    /// First layer-norm shift `[i]`.
    pub ln1_beta: Tensor,
    /// Feed-forward up projection `[u, i]`.
    pub w1: Tensor,
    /// Feed-forward up bias `[u]`.
    pub b1: Tensor,
    /// Feed-forward down projection `[i, u]`.
    pub w2: Tensor,
    /// Feed-forward down bias `[i]`.
    pub b2: Tensor,
    /// Second layer-norm scale `[i]`.
    pub ln2_gamma: Tensor,
    /// Second layer-norm shift `[i]`.
    pub ln2_beta: Tensor,
}

/// Gradients matching [`EncoderWeights`] field for field.
pub type EncoderGrads = EncoderWeights;

fn shape(dims: &EncoderDims, spec: &str) -> Shape {
    Shape::from_spec(spec, &dims.size_table()).expect("valid parameter spec")
}

impl EncoderWeights {
    /// Initializes weights with uniform(-scale, scale) where
    /// `scale = 1/√I`, biases at zero, layer-norm scale at one.
    pub fn init<R: Rng + ?Sized>(dims: &EncoderDims, rng: &mut R) -> Self {
        let s = 1.0 / (dims.i as f32).sqrt();
        let dist = Uniform::new(-s, s);
        let mut rand = |spec: &str| Tensor::random(shape(dims, spec), &dist, rng);
        let wq = rand("phi");
        let wk = rand("phi");
        let wv = rand("whi");
        let wo = rand("whi");
        let w1 = rand("ui");
        let w2 = rand("iu");
        let ones = |spec: &str| {
            let mut t = Tensor::zeros(shape(dims, spec));
            t.fill(1.0);
            t
        };
        EncoderWeights {
            wq,
            wk,
            wv,
            wo,
            bq: Tensor::zeros(shape(dims, "ph")),
            bk: Tensor::zeros(shape(dims, "ph")),
            bv: Tensor::zeros(shape(dims, "wh")),
            bo: Tensor::zeros(shape(dims, "i")),
            ln1_gamma: ones("i"),
            ln1_beta: Tensor::zeros(shape(dims, "i")),
            w1,
            b1: Tensor::zeros(shape(dims, "u")),
            w2,
            b2: Tensor::zeros(shape(dims, "i")),
            ln2_gamma: ones("i"),
            ln2_beta: Tensor::zeros(shape(dims, "i")),
        }
    }

    /// Zero-filled gradients with matching shapes.
    pub fn zeros_like(&self) -> EncoderGrads {
        let z = |t: &Tensor| Tensor::zeros(t.shape().clone());
        EncoderWeights {
            wq: z(&self.wq),
            wk: z(&self.wk),
            wv: z(&self.wv),
            wo: z(&self.wo),
            bq: z(&self.bq),
            bk: z(&self.bk),
            bv: z(&self.bv),
            bo: z(&self.bo),
            ln1_gamma: z(&self.ln1_gamma),
            ln1_beta: z(&self.ln1_beta),
            w1: z(&self.w1),
            b1: z(&self.b1),
            w2: z(&self.w2),
            b2: z(&self.b2),
            ln2_gamma: z(&self.ln2_gamma),
            ln2_beta: z(&self.ln2_beta),
        }
    }

    /// Field iterator as `(name, tensor)` pairs, for generic parameter
    /// traversal (updates, norms, serialization).
    pub fn fields(&self) -> Vec<(&'static str, &Tensor)> {
        vec![
            ("wq", &self.wq),
            ("wk", &self.wk),
            ("wv", &self.wv),
            ("wo", &self.wo),
            ("bq", &self.bq),
            ("bk", &self.bk),
            ("bv", &self.bv),
            ("bo", &self.bo),
            ("ln1_gamma", &self.ln1_gamma),
            ("ln1_beta", &self.ln1_beta),
            ("w1", &self.w1),
            ("b1", &self.b1),
            ("w2", &self.w2),
            ("b2", &self.b2),
            ("ln2_gamma", &self.ln2_gamma),
            ("ln2_beta", &self.ln2_beta),
        ]
    }

    /// Mutable field iterator, aligned with [`EncoderWeights::fields`].
    pub fn fields_mut(&mut self) -> Vec<(&'static str, &mut Tensor)> {
        vec![
            ("wq", &mut self.wq),
            ("wk", &mut self.wk),
            ("wv", &mut self.wv),
            ("wo", &mut self.wo),
            ("bq", &mut self.bq),
            ("bk", &mut self.bk),
            ("bv", &mut self.bv),
            ("bo", &mut self.bo),
            ("ln1_gamma", &mut self.ln1_gamma),
            ("ln1_beta", &mut self.ln1_beta),
            ("w1", &mut self.w1),
            ("b1", &mut self.b1),
            ("w2", &mut self.w2),
            ("b2", &mut self.b2),
            ("ln2_gamma", &mut self.ln2_gamma),
            ("ln2_beta", &mut self.ln2_beta),
        ]
    }

    /// In-place SGD step: `w ← w − lr · g`.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes disagree with the weights.
    pub fn sgd_step(&mut self, grads: &EncoderGrads, lr: f32) {
        let gs = grads.fields();
        for ((_, w), (_, g)) in self.fields_mut().into_iter().zip(gs) {
            assert_eq!(w.shape(), g.shape(), "gradient shape mismatch");
            for (wv, gv) in w.data_mut().iter_mut().zip(g.data()) {
                *wv -= lr * gv;
            }
        }
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.fields().iter().map(|(_, t)| t.len()).sum()
    }

    /// Global L2 norm over all parameters (for training diagnostics).
    pub fn global_norm(&self) -> f32 {
        self.fields()
            .iter()
            .flat_map(|(_, t)| t.data())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_shapes_are_consistent() {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let w = EncoderWeights::init(&dims, &mut rng);
        assert_eq!(w.wq.shape().spec(), "phi");
        assert_eq!(w.w1.shape().spec(), "ui");
        assert_eq!(w.w2.shape().spec(), "iu");
        assert_eq!(w.fields().len(), 16);
        // BERT-large parameter count per layer ≈ 12.6M
        let big = EncoderWeights::init(&EncoderDims::bert_large(), &mut rng);
        let n = big.num_parameters();
        assert!(n > 12_000_000 && n < 13_000_000, "params {n}");
    }

    #[test]
    fn layernorm_weights_start_at_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = EncoderWeights::init(&EncoderDims::tiny(), &mut rng);
        assert!(w.ln1_gamma.data().iter().all(|&v| v == 1.0));
        assert!(w.ln1_beta.data().iter().all(|&v| v == 0.0));
        assert!(w.bq.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sgd_step_moves_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = EncoderWeights::init(&EncoderDims::tiny(), &mut rng);
        let mut g = w.zeros_like();
        g.w1.fill(1.0);
        let before = w.w1.at(&[0, 0]);
        w.sgd_step(&g, 0.1);
        assert!((w.w1.at(&[0, 0]) - (before - 0.1)).abs() < 1e-6);
        // untouched params stay
        assert!(w.ln1_gamma.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn norms_and_zeros() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = EncoderWeights::init(&EncoderDims::tiny(), &mut rng);
        assert!(w.global_norm() > 0.0);
        let z = w.zeros_like();
        for (_, t) in z.fields() {
            assert!(t.data().iter().all(|&v| v == 0.0));
        }
    }
}
