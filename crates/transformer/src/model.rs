//! A complete miniature language model: token + positional embeddings, a
//! stack of transformer blocks, and a tied-free linear head with
//! cross-entropy loss — the "full training pipeline by stacking our
//! optimized layers" the paper points to in Sec. VI-C.
//!
//! The stack can be built from post-LN encoder layers (BERT-style) or
//! pre-LN causal decoder blocks (GPT-style). Training on the toy
//! copy-previous-token task exercises every operator of the training
//! graph, end to end, on the CPU substrate.

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xform_dataflow::EncoderDims;
use xform_tensor::{Result, Shape, Tensor, TensorError};

use crate::decoder::{DecoderActivations, DecoderLayer};
use crate::encoder::{Activations, EncoderLayer, Executor};
use crate::params::{EncoderGrads, EncoderWeights};

/// Which block the stack repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Post-LN bidirectional encoder layers (BERT).
    Encoder,
    /// Pre-LN causally masked decoder blocks (GPT-2).
    Decoder,
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Per-block dimensions (`j` is the sequence length).
    pub dims: EncoderDims,
    /// Number of stacked blocks.
    pub layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Block kind.
    pub block: BlockKind,
    /// Dropout probability during training.
    pub dropout_p: f32,
}

/// Saved per-block activations (one variant per block kind).
#[derive(Debug, Clone)]
pub enum BlockActs {
    /// Encoder activations.
    Encoder(Activations),
    /// Decoder activations.
    Decoder(DecoderActivations),
}

/// Forward-pass bookkeeping for the whole model.
#[derive(Debug, Clone)]
pub struct ModelActs {
    /// The embedded input (block 0's input).
    pub x0: Tensor,
    /// Inputs to each block (x0, then each block's output).
    pub block_inputs: Vec<Tensor>,
    /// Saved activations per block.
    pub blocks: Vec<BlockActs>,
    /// Final hidden state (input to the head).
    pub hidden: Tensor,
    /// Softmax of the logits over the vocabulary (saved for backward).
    pub probs: Tensor,
}

/// The model: embeddings, block stack, head.
#[derive(Debug, Clone)]
pub struct TransformerModel {
    /// Hyperparameters.
    pub config: ModelConfig,
    /// Token embedding `[v, i]`.
    pub embedding: Tensor,
    /// Positional embedding `[j, i]` (learned, GPT-style).
    pub positional: Tensor,
    /// Per-block weights.
    pub blocks: Vec<EncoderWeights>,
    /// Output head `[v, i]`.
    pub head: Tensor,
    /// Head bias `[v]`.
    pub head_bias: Tensor,
}

/// Gradients for [`TransformerModel`].
#[derive(Debug, Clone)]
pub struct ModelGrads {
    /// Token-embedding gradient.
    pub embedding: Tensor,
    /// Positional-embedding gradient.
    pub positional: Tensor,
    /// Per-block gradients.
    pub blocks: Vec<EncoderGrads>,
    /// Head gradient.
    pub head: Tensor,
    /// Head-bias gradient.
    pub head_bias: Tensor,
}

impl TransformerModel {
    /// Initializes a model.
    ///
    /// # Errors
    ///
    /// Returns an error for zero-sized configuration values.
    pub fn init<R: Rng + ?Sized>(config: ModelConfig, rng: &mut R) -> Result<Self> {
        if config.layers == 0 || config.vocab == 0 {
            return Err(TensorError::Unsupported(
                "model needs at least one layer and one token".into(),
            ));
        }
        let d = &config.dims;
        let s = 1.0 / (d.i as f32).sqrt();
        let dist = Uniform::new(-s, s);
        let emb = Tensor::random(Shape::new([('v', config.vocab), ('i', d.i)])?, &dist, rng);
        let pos = Tensor::random(Shape::new([('j', d.j), ('i', d.i)])?, &dist, rng);
        let head = Tensor::random(Shape::new([('v', config.vocab), ('i', d.i)])?, &dist, rng);
        let blocks = (0..config.layers)
            .map(|_| EncoderWeights::init(d, rng))
            .collect();
        Ok(TransformerModel {
            config,
            embedding: emb,
            positional: pos,
            blocks,
            head,
            head_bias: Tensor::zeros(Shape::new([('v', config.vocab)])?),
        })
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.embedding.len()
            + self.positional.len()
            + self.head.len()
            + self.head_bias.len()
            + self
                .blocks
                .iter()
                .map(|b| b.num_parameters())
                .sum::<usize>()
    }

    /// Embeds a token batch (`tokens[b][j]`) into `x[i,b,j]`.
    ///
    /// # Errors
    ///
    /// Returns an error if a token id is out of range or the batch shape
    /// disagrees with the configuration.
    pub fn embed(&self, tokens: &[Vec<usize>]) -> Result<Tensor> {
        let d = &self.config.dims;
        if tokens.len() != d.b || tokens.iter().any(|row| row.len() != d.j) {
            return Err(TensorError::ShapeMismatch {
                context: "embed batch",
            });
        }
        let mut x = Tensor::zeros(Shape::from_spec("ibj", &d.size_table())?);
        for (b, row) in tokens.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                if t >= self.config.vocab {
                    return Err(TensorError::Unsupported(format!(
                        "token id {t} out of vocabulary"
                    )));
                }
                for i in 0..d.i {
                    let v = self.embedding.at(&[t, i]) + self.positional.at(&[j, i]);
                    x.set(&[i, b, j], v);
                }
            }
        }
        Ok(x)
    }

    /// Full forward pass to vocabulary probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        tokens: &[Vec<usize>],
        rng: &mut R,
    ) -> Result<ModelActs> {
        let x0 = self.embed(tokens)?;
        let mut block_inputs = vec![x0.clone()];
        let mut acts = Vec::with_capacity(self.blocks.len());
        let mut h = x0.clone();
        for w in &self.blocks {
            // per-block dropout stream drawn from the caller's RNG so the
            // whole model stays deterministic under a seeded generator
            let opts = xform_core::plan::ExecOptions::builder()
                .seed(rng.gen::<u64>())
                .build();
            let (next, a) = match self.config.block {
                BlockKind::Encoder => {
                    let layer =
                        EncoderLayer::new(self.config.dims, Executor::Fused, self.config.dropout_p);
                    let (y, a) = layer.forward(&h, w, &opts)?.into_pair()?;
                    (y, BlockActs::Encoder(a))
                }
                BlockKind::Decoder => {
                    let layer = DecoderLayer::new(self.config.dims, self.config.dropout_p);
                    let (y, a) = layer.forward(&h, w, &opts)?.into_pair()?;
                    (y, BlockActs::Decoder(a))
                }
            };
            acts.push(a);
            block_inputs.push(next.clone());
            h = next;
        }
        // head: logits[v,b,j] = head[v,i]·h[i,b,j] + bias[v]
        let logits = xform_tensor::ops::elementwise::bias_add(
            &xform_tensor::einsum("vi,ibj->vbj", &[&self.head, &h])?,
            &self.head_bias,
        )?;
        let probs = xform_tensor::ops::softmax::softmax(&logits, xform_tensor::Axis('v'))?;
        Ok(ModelActs {
            x0,
            block_inputs,
            blocks: acts,
            hidden: h,
            probs,
        })
    }

    /// Mean cross-entropy of the saved probabilities against targets.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn cross_entropy(&self, acts: &ModelActs, targets: &[Vec<usize>]) -> Result<f32> {
        let d = &self.config.dims;
        let mut loss = 0.0f32;
        for (b, row) in targets.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                loss -= acts.probs.at(&[t, b, j]).max(1e-12).ln();
            }
        }
        Ok(loss / (d.b * d.j) as f32)
    }

    /// Full backward pass from cross-entropy targets; returns gradients for
    /// every parameter.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn backward(
        &self,
        tokens: &[Vec<usize>],
        targets: &[Vec<usize>],
        acts: &ModelActs,
    ) -> Result<ModelGrads> {
        let d = &self.config.dims;
        let n = (d.b * d.j) as f32;
        // d logits = (softmax - onehot) / N
        let mut d_logits = acts.probs.clone();
        for (b, row) in targets.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                let cur = d_logits.at(&[t, b, j]);
                d_logits.set(&[t, b, j], cur - 1.0);
            }
        }
        for v in d_logits.data_mut() {
            *v /= n;
        }
        // head grads and hidden gradient
        let head_grad = xform_tensor::einsum("vbj,ibj->vi", &[&d_logits, &acts.hidden])?;
        let head_bias_grad =
            xform_tensor::ops::elementwise::bias_grad(&d_logits, &[xform_tensor::Axis('v')])?;
        let mut dh = xform_tensor::einsum("vi,vbj->ibj", &[&self.head, &d_logits])?;
        // backprop through the stack
        let mut block_grads: Vec<EncoderGrads> = Vec::with_capacity(self.blocks.len());
        for (idx, w) in self.blocks.iter().enumerate().rev() {
            let input = &acts.block_inputs[idx];
            let (dx, g) = match (&acts.blocks[idx], self.config.block) {
                (BlockActs::Encoder(a), BlockKind::Encoder) => {
                    let layer =
                        EncoderLayer::new(self.config.dims, Executor::Fused, self.config.dropout_p);
                    layer.backward(&dh, input, w, a)?
                }
                (BlockActs::Decoder(a), BlockKind::Decoder) => {
                    let layer = DecoderLayer::new(self.config.dims, self.config.dropout_p);
                    layer.backward(&dh, input, w, a)?
                }
                _ => {
                    return Err(TensorError::Unsupported(
                        "activation kind does not match block kind".into(),
                    ))
                }
            };
            block_grads.push(g);
            dh = dx;
        }
        block_grads.reverse();
        // embedding gradients: scatter-add of dh = d x0
        let mut emb_grad = Tensor::zeros(self.embedding.shape().clone());
        let mut pos_grad = Tensor::zeros(self.positional.shape().clone());
        for (b, row) in tokens.iter().enumerate() {
            for (j, &t) in row.iter().enumerate() {
                for i in 0..d.i {
                    let g = dh.at(&[i, b, j]);
                    let cur = emb_grad.at(&[t, i]);
                    emb_grad.set(&[t, i], cur + g);
                    let cur = pos_grad.at(&[j, i]);
                    pos_grad.set(&[j, i], cur + g);
                }
            }
        }
        Ok(ModelGrads {
            embedding: emb_grad,
            positional: pos_grad,
            blocks: block_grads,
            head: head_grad,
            head_bias: head_bias_grad,
        })
    }

    /// SGD update over every parameter.
    pub fn sgd_step(&mut self, grads: &ModelGrads, lr: f32) {
        let upd = |w: &mut Tensor, g: &Tensor| {
            for (wv, gv) in w.data_mut().iter_mut().zip(g.data()) {
                *wv -= lr * gv;
            }
        };
        upd(&mut self.embedding, &grads.embedding);
        upd(&mut self.positional, &grads.positional);
        upd(&mut self.head, &grads.head);
        upd(&mut self.head_bias, &grads.head_bias);
        for (w, g) in self.blocks.iter_mut().zip(&grads.blocks) {
            w.sgd_step(g, lr);
        }
    }
}

/// The toy task: predict the *previous* token at every position (position
/// 0 predicts a fixed begin token 0). A causal model can only solve it by
/// attending one step back — it exercises attention, not just the FFN.
pub fn copy_task_batch<R: Rng + ?Sized>(
    config: &ModelConfig,
    rng: &mut R,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let d = &config.dims;
    let mut tokens = Vec::with_capacity(d.b);
    let mut targets = Vec::with_capacity(d.b);
    for _ in 0..d.b {
        let row: Vec<usize> = (0..d.j).map(|_| rng.gen_range(1..config.vocab)).collect();
        let mut tgt = vec![0usize];
        tgt.extend_from_slice(&row[..d.j - 1]);
        tokens.push(row);
        targets.push(tgt);
    }
    (tokens, targets)
}

/// Trains a model on the copy task, returning per-step losses.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn train_lm(
    config: ModelConfig,
    steps: usize,
    lr: f32,
    seed: u64,
) -> Result<(TransformerModel, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = TransformerModel::init(config, &mut rng)?;
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let mut data_rng = StdRng::seed_from_u64(seed ^ (1000 + step as u64 % 8));
        let (tokens, targets) = copy_task_batch(&config, &mut data_rng);
        let acts = model.forward(&tokens, &mut rng)?;
        losses.push(model.cross_entropy(&acts, &targets)?);
        let grads = model.backward(&tokens, &targets, &acts)?;
        model.sgd_step(&grads, lr);
    }
    Ok((model, losses))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(block: BlockKind) -> ModelConfig {
        ModelConfig {
            dims: EncoderDims {
                b: 2,
                j: 6,
                k: 6,
                h: 2,
                p: 4,
                i: 8,
                u: 16,
            },
            layers: 2,
            vocab: 5,
            block,
            dropout_p: 0.0,
        }
    }

    #[test]
    fn forward_produces_distributions() {
        let cfg = config(BlockKind::Decoder);
        let mut rng = StdRng::seed_from_u64(1);
        let model = TransformerModel::init(cfg, &mut rng).unwrap();
        let (tokens, _) = copy_task_batch(&cfg, &mut rng);
        let acts = model.forward(&tokens, &mut rng).unwrap();
        for b in 0..cfg.dims.b {
            for j in 0..cfg.dims.j {
                let s: f32 = (0..cfg.vocab).map(|v| acts.probs.at(&[v, b, j])).sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
        assert_eq!(acts.blocks.len(), 2);
    }

    #[test]
    fn loss_decreases_on_copy_task_decoder() {
        let cfg = config(BlockKind::Decoder);
        let (_, losses) = train_lm(cfg, 60, 0.5, 3).unwrap();
        let first = losses[..5].iter().sum::<f32>() / 5.0;
        let last = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last < first * 0.8,
            "LM did not learn: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn loss_decreases_with_encoder_blocks_too() {
        let cfg = config(BlockKind::Encoder);
        let (_, losses) = train_lm(cfg, 40, 0.5, 4).unwrap();
        let first = losses[..5].iter().sum::<f32>() / 5.0;
        let last = losses[losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            last < first,
            "encoder stack did not learn: {first:.3} -> {last:.3}"
        );
    }

    #[test]
    fn embedding_gradients_match_numerical() {
        let cfg = config(BlockKind::Decoder);
        let mut rng = StdRng::seed_from_u64(5);
        let model = TransformerModel::init(cfg, &mut rng).unwrap();
        let mut data_rng = StdRng::seed_from_u64(6);
        let (tokens, targets) = copy_task_batch(&cfg, &mut data_rng);
        let acts = model
            .forward(&tokens, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let grads = model.backward(&tokens, &targets, &acts).unwrap();
        let loss_of = |m: &TransformerModel| -> f32 {
            let a = m.forward(&tokens, &mut StdRng::seed_from_u64(7)).unwrap();
            m.cross_entropy(&a, &targets).unwrap()
        };
        let eps = 1e-2f32;
        // used token embedding entries
        let t0 = tokens[0][0];
        for i in [0usize, 3] {
            let mut mp = model.clone();
            let v = mp.embedding.at(&[t0, i]);
            mp.embedding.set(&[t0, i], v + eps);
            let mut mm = model.clone();
            mm.embedding.set(&[t0, i], v - eps);
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
            let ana = grads.embedding.at(&[t0, i]);
            assert!(
                (num - ana).abs() < 0.03 * (1.0 + num.abs()),
                "emb[{t0},{i}]: numeric {num} vs analytic {ana}"
            );
        }
        // head entries
        for (v, i) in [(0usize, 1usize), (2, 5)] {
            let mut mp = model.clone();
            let w = mp.head.at(&[v, i]);
            mp.head.set(&[v, i], w + eps);
            let mut mm = model.clone();
            mm.head.set(&[v, i], w - eps);
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
            let ana = grads.head.at(&[v, i]);
            assert!(
                (num - ana).abs() < 0.03 * (1.0 + num.abs()),
                "head[{v},{i}]: numeric {num} vs analytic {ana}"
            );
        }
        // positional embedding
        let mut mp = model.clone();
        let v = mp.positional.at(&[1, 2]);
        mp.positional.set(&[1, 2], v + eps);
        let mut mm = model.clone();
        mm.positional.set(&[1, 2], v - eps);
        let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
        let ana = grads.positional.at(&[1, 2]);
        assert!((num - ana).abs() < 0.03 * (1.0 + num.abs()));
    }

    #[test]
    fn rejects_bad_inputs() {
        let cfg = config(BlockKind::Decoder);
        let mut rng = StdRng::seed_from_u64(8);
        let model = TransformerModel::init(cfg, &mut rng).unwrap();
        // wrong batch size
        assert!(model.embed(&[vec![0; 6]]).is_err());
        // out-of-vocabulary token
        let mut tokens = vec![vec![0usize; 6]; 2];
        tokens[0][0] = 99;
        assert!(model.embed(&tokens).is_err());
        // zero layers
        let bad = ModelConfig { layers: 0, ..cfg };
        assert!(TransformerModel::init(bad, &mut rng).is_err());
    }

    #[test]
    fn parameter_count_is_consistent() {
        let cfg = config(BlockKind::Decoder);
        let mut rng = StdRng::seed_from_u64(9);
        let model = TransformerModel::init(cfg, &mut rng).unwrap();
        let expected = cfg.vocab * cfg.dims.i * 2        // embedding + head
            + cfg.dims.j * cfg.dims.i                    // positional
            + cfg.vocab                                  // head bias
            + model.blocks.iter().map(|b| b.num_parameters()).sum::<usize>();
        assert_eq!(model.num_parameters(), expected);
    }
}
