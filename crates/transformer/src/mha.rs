//! Standalone multi-head attention (general attention, Fig. 1): distinct
//! query/key/value inputs, for use outside the encoder layer (Table IV's
//! benchmark primitive and non-transformer applications of MHA).

use rand::Rng;

use xform_dataflow::EncoderDims;
use xform_tensor::fused::{self, SmOutput};
use xform_tensor::{einsum, Axis, Result, Tensor};

use crate::params::EncoderWeights;

/// Saved values from an MHA forward pass.
#[derive(Debug, Clone)]
pub struct MhaActivations {
    /// Biased query projections.
    pub qq: Tensor,
    /// Biased key projections.
    pub kk: Tensor,
    /// Biased value projections.
    pub vv: Tensor,
    /// Softmax bundle.
    pub sm: SmOutput,
    /// Attention context.
    pub gam: Tensor,
}

/// Gradients of MHA with respect to its three inputs.
#[derive(Debug, Clone)]
pub struct MhaInputGrads {
    /// Gradient w.r.t. the query input `[i,b,j]`.
    pub dq: Tensor,
    /// Gradient w.r.t. the key input `[i,b,k]`.
    pub dk: Tensor,
    /// Gradient w.r.t. the value input `[i,b,k]`.
    pub dv: Tensor,
}

/// Multi-head attention forward: general attention over distinct `q`
/// (`[i,b,j]`), `k` and `v` (`[i,b,k]`) inputs. Uses the attention weights
/// of `w` (`wq/wk/wv/wo`, `bq/bk/bv/bo`).
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn mha_forward<R: Rng + ?Sized>(
    dims: &EncoderDims,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    w: &EncoderWeights,
    dropout_p: f32,
    rng: &mut R,
) -> Result<(Tensor, MhaActivations)> {
    let scaler = 1.0 / (dims.p as f32).sqrt();
    let qq_raw = einsum("phi,ibj->phbj", &[&w.wq, q])?;
    let kk_raw = einsum("phi,ibk->phbk", &[&w.wk, k])?;
    let vv_raw = einsum("whi,ibk->whbk", &[&w.wv, v])?;
    let (qq, kk, vv) = fused::aib(&qq_raw, &w.bq, &kk_raw, &w.bk, &vv_raw, &w.bv)?;
    let beta = einsum("phbk,phbj->hbjk", &[&kk, &qq])?;
    let sm = fused::sm(&beta, scaler, Axis('k'), dropout_p, rng)?;
    let gam = einsum("whbk,hbjk->whbj", &[&vv, &sm.alpha])?;
    let out_mm = einsum("whi,whbj->ibj", &[&w.wo, &gam])?;
    let out = xform_tensor::ops::elementwise::bias_add(&out_mm, &w.bo)?;
    Ok((
        out,
        MhaActivations {
            qq,
            kk,
            vv,
            sm,
            gam,
        },
    ))
}

/// Multi-head attention backward: gradient of the output w.r.t. the three
/// inputs (weight gradients follow the encoder-layer pattern and are
/// omitted here; the encoder covers them).
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn mha_backward(
    dims: &EncoderDims,
    dy: &Tensor,
    w: &EncoderWeights,
    a: &MhaActivations,
) -> Result<MhaInputGrads> {
    let scaler = 1.0 / (dims.p as f32).sqrt();
    let d_gam = einsum("whi,ibj->whbj", &[&w.wo, dy])?;
    let d_alpha = einsum("whbk,whbj->hbjk", &[&a.vv, &d_gam])?;
    let d_vv = einsum("whbj,hbjk->whbk", &[&d_gam, &a.sm.alpha])?;
    let d_beta = fused::bs(&d_alpha, &a.sm.mask, &a.sm.softmax, Axis('k'), scaler)?;
    let d_qq = einsum("phbk,hbjk->phbj", &[&a.kk, &d_beta])?;
    let d_kk = einsum("phbj,hbjk->phbk", &[&a.qq, &d_beta])?;
    Ok(MhaInputGrads {
        dq: einsum("phi,phbj->ibj", &[&w.wq, &d_qq])?,
        dk: einsum("phi,phbk->ibk", &[&w.wk, &d_kk])?,
        dv: einsum("whi,whbk->ibk", &[&w.wv, &d_vv])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EncoderWeights;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xform_tensor::Shape;

    fn setup() -> (EncoderDims, EncoderWeights, Tensor, Tensor, Tensor) {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let w = EncoderWeights::init(&dims, &mut rng);
        let mk = |spec: &str, rng: &mut StdRng| {
            Tensor::random(
                Shape::from_spec(spec, &dims.size_table()).unwrap(),
                &Uniform::new(-1.0, 1.0),
                rng,
            )
        };
        let q = mk("ibj", &mut rng);
        let k = mk("ibk", &mut rng);
        let v = mk("ibk", &mut rng);
        (dims, w, q, k, v)
    }

    #[test]
    fn forward_shapes() {
        let (dims, w, q, k, v) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let (out, acts) = mha_forward(&dims, &q, &k, &v, &w, 0.0, &mut rng).unwrap();
        assert_eq!(out.shape().spec(), "ibj");
        assert_eq!(acts.sm.alpha.shape().spec(), "hbjk");
        assert_eq!(acts.gam.shape().spec(), "whbj");
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let (dims, w, q, k, v) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let (_, acts) = mha_forward(&dims, &q, &k, &v, &w, 0.0, &mut rng).unwrap();
        // softmax rows over k sum to 1
        for h in 0..dims.h {
            for b in 0..dims.b {
                for j in 0..dims.j {
                    let s: f32 = (0..dims.k)
                        .map(|kk| acts.sm.softmax.at(&[h, b, j, kk]))
                        .sum();
                    assert!((s - 1.0).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn self_attention_consistency_with_encoder_path() {
        // With q = k = v, MHA matches the encoder's attention sub-path.
        let (dims, w, q, _, _) = setup();
        let k = q.relabel("ibk").unwrap();
        let v = k.clone();
        let mut rng = StdRng::seed_from_u64(4);
        let (out, _) = mha_forward(&dims, &q, &k, &v, &w, 0.0, &mut rng).unwrap();
        assert_eq!(out.shape().spec(), "ibj");
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn backward_matches_numerical_on_query_input() {
        let (dims, w, q, k, v) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let (out, acts) = mha_forward(&dims, &q, &k, &v, &w, 0.0, &mut rng).unwrap();
        let loss_w = Tensor::random(
            out.shape().clone(),
            &Uniform::new(-1.0, 1.0),
            &mut StdRng::seed_from_u64(6),
        );
        let grads = mha_backward(&dims, &loss_w, &w, &acts).unwrap();
        let loss = |qq: &Tensor, kk: &Tensor, vv: &Tensor| -> f32 {
            let mut r = StdRng::seed_from_u64(5);
            let (o, _) = mha_forward(&dims, qq, kk, vv, &w, 0.0, &mut r).unwrap();
            o.iter().map(|(i, x)| loss_w.at(&i) * x).sum()
        };
        let eps = 1e-2f32;
        for (t, g, name) in [
            (&q, &grads.dq, "dq"),
            (&k, &grads.dk, "dk"),
            (&v, &grads.dv, "dv"),
        ] {
            for flat in [0usize, 13, 29] {
                let mut idx = vec![0usize; 3];
                for _ in 0..flat {
                    t.advance(&mut idx);
                }
                let off = t.offset(&idx);
                let mut tp = (*t).clone();
                tp.data_mut()[off] += eps;
                let mut tm = (*t).clone();
                tm.data_mut()[off] -= eps;
                let (lp, lm) = match name {
                    "dq" => (loss(&tp, &k, &v), loss(&tm, &k, &v)),
                    "dk" => (loss(&q, &tp, &v), loss(&q, &tm, &v)),
                    _ => (loss(&q, &k, &tp), loss(&q, &k, &tm)),
                };
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - g.at(&idx)).abs() < 0.05 * (1.0 + num.abs()),
                    "{name} at {idx:?}: numerical {num} vs analytic {}",
                    g.at(&idx)
                );
            }
        }
    }
}
