//! The BERT encoder layer on the CPU tensor substrate: forward and
//! backward, with a reference (unfused) and a fused executor.
//!
//! Since the plan-driven refactor both executors are *canned execution
//! plans* run by the schedule interpreter of [`xform_core::plan`]: the
//! reference executor is the unfused dataflow graph with natural layouts
//! (the eager per-operator execution of the PyTorch baseline), the fused
//! executor the same graph with the paper's fusion plan applied, one step
//! per fused kernel. The single entry point
//! [`EncoderLayer::forward`] is driven entirely by
//! [`ExecOptions`]: `threads` picks the serial or the certified
//! wave-parallel interpreter, [`ExecOptions::plan`] substitutes *any*
//! plan over the encoder graph — in particular one lowered from the
//! recipe's SSSP layout selection — and
//! [`ExecOptions::profiler`] attaches a runtime profiler, so the
//! optimized configuration runs through exactly the same code path. Both
//! canned executors compute identical values (equivalence is tested with
//! dropout disabled, and backward is bit-for-bit given the same saved
//! masks).

use xform_core::plan::{ExecOptions, ExecState, ExecutionPlan};
use xform_core::sanitize::RaceCertificate;
use xform_dataflow::{EncoderDims, Graph};
use xform_tensor::fused::{self, BdrlnOutput, BrdOutput, SmOutput};
use xform_tensor::ops::dropout::dropout_backward;
use xform_tensor::ops::elementwise::{activate_backward, add, bias_grad, scale, ActivationKind};
use xform_tensor::ops::layernorm::{layernorm_backward_input, layernorm_backward_weights};
use xform_tensor::ops::softmax::softmax_backward;
use xform_tensor::{einsum, Axis, Result, Tensor};

use crate::interp::{self, bind_inputs, finish, run_plan, ForwardOutput, PlannedForward};
use crate::params::{EncoderGrads, EncoderWeights};

fn missing_stats(name: &str) -> xform_tensor::TensorError {
    xform_tensor::TensorError::Unsupported(format!(
        "plan produced no layer-norm statistics for `{name}`"
    ))
}

/// Assembles the saved activations out of a finished interpreter
/// environment (shared by the serial and the wave-parallel forward).
fn collect_activations(mut state: ExecState) -> Result<(Tensor, Activations)> {
    let stats1 = state
        .stats
        .remove("ln1_out")
        .ok_or_else(|| missing_stats("ln1_out"))?;
    let stats2 = state.stats.remove("y").ok_or_else(|| missing_stats("y"))?;
    let y = state.get("y")?.clone();
    Ok((
        y,
        Activations {
            qq: state.take("qq")?,
            kk: state.take("kk")?,
            vv: state.take("vv")?,
            sm: SmOutput {
                alpha: state.take("alpha")?,
                softmax: state.take("att")?,
                mask: state.take("att_mask")?,
            },
            gam: state.take("gamma")?,
            ln1: BdrlnOutput {
                out: state.take("ln1_out")?,
                ln_input: state.take("ln1_in")?,
                mask: state.take("drop1_mask")?,
                stats: stats1,
            },
            brd: BrdOutput {
                out: state.take("ff1_drop")?,
                pre_activation: state.take("ff1_b")?,
                mask: state.take("drop2_mask")?,
            },
            ln2: BdrlnOutput {
                out: state.take("y")?,
                ln_input: state.take("ln2_in")?,
                mask: state.take("drop3_mask")?,
                stats: stats2,
            },
        },
    ))
}

/// Which kernel set executes the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// One unfused operator per dataflow node (the PyTorch-style baseline).
    Reference,
    /// The paper's fused kernels (AIB, SM, BDRLN, BRD, BSB, BLNRD, BDRB,
    /// EBSB, BS, BAOB, BAIB, BEI).
    Fused,
    /// The fused kernels plus GEMM-epilogue mega-kernels: the QKT→SM and
    /// Linear 1→BRD chains collapse into single tiled contraction steps
    /// whose intermediates (`beta`, `ff1`) are never materialized.
    Epilogue,
}

/// A configured encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    /// Problem dimensions.
    pub dims: EncoderDims,
    /// Kernel set.
    pub executor: Executor,
    /// Dropout probability (0 disables dropout deterministically).
    pub dropout_p: f32,
    /// Feed-forward activation (the paper's Fig. 2 uses ReLU; real BERT
    /// uses GELU — both are element-wise, so the analysis is identical).
    pub activation: ActivationKind,
}

/// Forward-pass values saved for backpropagation (the `Saved` containers of
/// the dataflow graph: projections, attention weights, masks, layer-norm
/// inputs and statistics).
#[derive(Debug, Clone)]
pub struct Activations {
    /// Biased query projections `[p,h,b,j]`.
    pub qq: Tensor,
    /// Biased key projections `[p,h,b,k]`.
    pub kk: Tensor,
    /// Biased value projections `[w,h,b,k]`.
    pub vv: Tensor,
    /// Fused softmax output bundle (alpha, saved softmax, mask).
    pub sm: SmOutput,
    /// Attention context `[w,h,b,j]`.
    pub gam: Tensor,
    /// First bias+dropout+residual+layernorm bundle.
    pub ln1: BdrlnOutput,
    /// Feed-forward bias+ReLU+dropout bundle.
    pub brd: BrdOutput,
    /// Second bias+dropout+residual+layernorm bundle.
    pub ln2: BdrlnOutput,
}

impl EncoderLayer {
    /// Creates a layer with the fused executor and the given dropout.
    pub fn new(dims: EncoderDims, executor: Executor, dropout_p: f32) -> Self {
        EncoderLayer {
            dims,
            executor,
            dropout_p,
            activation: ActivationKind::Relu,
        }
    }

    /// Switches the feed-forward activation (builder-style).
    pub fn with_activation(mut self, activation: ActivationKind) -> Self {
        self.activation = activation;
        self
    }

    /// The attention scaling factor `1/√P`.
    pub fn scaler(&self) -> f32 {
        1.0 / (self.dims.p as f32).sqrt()
    }

    /// The canned-plan cache key for the layer's executor kind.
    fn plan_kind(&self) -> interp::PlanKind {
        match self.executor {
            Executor::Reference => interp::PlanKind::EncoderReference,
            Executor::Fused => interp::PlanKind::EncoderFused,
            Executor::Epilogue => interp::PlanKind::EncoderEpilogue,
        }
    }

    /// The layer's canned plan for its executor kind.
    fn planned(&self) -> Result<std::sync::Arc<PlannedForward>> {
        interp::cached_plan(&self.dims, self.plan_kind())
    }

    /// Merges the caller's run configuration with the layer-owned scalar
    /// knobs: `dropout_p`, `activation`, and the attention `scaler` always
    /// come from the layer, everything else from `opts`.
    fn exec_options<'p>(&self, opts: &ExecOptions<'p>) -> ExecOptions<'p> {
        opts.to_builder()
            .dropout_p(self.dropout_p)
            .activation(self.activation)
            .scaler(self.scaler())
            .build()
    }

    /// Runs forward propagation on input `x` (`[i,b,j]`) — the single
    /// entry point for every execution mode, driven by `opts`:
    ///
    /// * [`ExecOptions::threads`] — `1` (or `0`) runs the serial
    ///   interpreter with one RNG stream seeded by [`ExecOptions::seed`];
    ///   more runs the certified wave-parallel interpreter with per-step
    ///   RNG streams (bitwise-equal to serial when `dropout_p = 0`,
    ///   thread-count-invariant always);
    /// * [`ExecOptions::plan`] — substitutes an arbitrary plan over the
    ///   encoder graph (e.g. one lowered from a recipe selection) for the
    ///   layer's canned plan; parallel runs need the override to carry a
    ///   race certificate;
    /// * [`ExecOptions::collect_activations`] — when `false`, skips
    ///   assembling the saved-activation bundle;
    /// * [`ExecOptions::profiler`] — records per-step measured times into
    ///   the sink ([`xform_core::profile::PlanProfiler`]);
    /// * [`ExecOptions::sanitize`] — routes through the shadow-access
    ///   sanitizer.
    ///
    /// The layer-owned scalar knobs (`dropout_p`, `activation`, attention
    /// scale) are taken from the layer itself; the corresponding
    /// `ExecOptions` fields are ignored.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong shape for the layer's
    /// dimensions, the plan fails validation, a parallel run lacks a
    /// certificate, or a kernel rejects its operands.
    pub fn forward(
        &self,
        x: &Tensor,
        w: &EncoderWeights,
        opts: &ExecOptions,
    ) -> Result<ForwardOutput<Activations>> {
        let cached;
        let (graph, plan, cert): (&Graph, &ExecutionPlan, Option<&RaceCertificate>) =
            match opts.plan {
                Some(o) => (o.graph, o.plan, o.cert),
                None => {
                    cached = self.planned()?;
                    (&cached.graph, &cached.plan, Some(&cached.cert))
                }
            };
        let mut state = bind_inputs(x, w)?;
        let arena;
        let mut run_opts = self.exec_options(opts);
        if opts.plan.is_none() && opts.profiler.is_none() {
            if let Some(a) = interp::cached_arena(
                &self.dims,
                self.plan_kind(),
                interp::granularity_for(opts.threads),
            )? {
                arena = a;
                run_opts.arena = Some(&arena);
            }
        }
        run_plan(graph, plan, cert, &mut state, &run_opts)?;
        finish(state, opts.collect_activations, collect_activations)
    }

    /// Forward propagation into a caller-provided output tensor — the
    /// steady-state zero-allocation entry point. After a warmup call has
    /// populated the plan and arena caches, every subsequent call binds
    /// `x` and the weights straight into the layer's static arena,
    /// executes out of the slab through the `*_into` kernels, and copies
    /// the produced `y` into `&mut y` without touching the heap (see
    /// `tests/alloc_discipline.rs`).
    ///
    /// `y` must be a dense row-major tensor of the layer's output
    /// geometry (`[i,b,j]`); its contents are overwritten. The arena path
    /// honors `opts.threads`, `opts.seed`, and `opts.sanitize`
    /// ([`xform_core::plan::SanitizeMode::Env`] is resolved once per
    /// process on this path, so set `XFORM_SANITIZE` before the first
    /// call). Saved activations are not assembled. When the arena is
    /// unavailable — a plan override or profiler is configured, the
    /// canned plan has a shape the arena compiler declined, or another
    /// thread holds the slab — the call falls back transparently to the
    /// allocating [`EncoderLayer::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error if `y` has the wrong size, `x` has the wrong
    /// shape, or the execution itself fails (see
    /// [`EncoderLayer::forward`]).
    pub fn forward_into(
        &self,
        x: &Tensor,
        w: &EncoderWeights,
        opts: &ExecOptions,
        y: &mut Tensor,
    ) -> Result<()> {
        if opts.plan.is_none()
            && opts.profiler.is_none()
            && interp::arena_forward_into(
                &self.dims,
                self.plan_kind(),
                x,
                w,
                &self.exec_options(opts),
                y,
            )?
        {
            return Ok(());
        }
        let fallback = opts.to_builder().collect_activations(false).build();
        let out = self.forward(x, w, &fallback)?;
        if out.y.len() != y.len() {
            return Err(xform_tensor::TensorError::Unsupported(format!(
                "output tensor holds {} words; the layer produced {}",
                y.len(),
                out.y.len(),
            )));
        }
        xform_tensor::into_ops::copy_tensor_into(&out.y, y.data_mut());
        Ok(())
    }

    /// Runs backpropagation: given the output gradient `dy` and the saved
    /// activations, returns the input gradient `dx` and all weight
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn backward(
        &self,
        dy: &Tensor,
        x: &Tensor,
        w: &EncoderWeights,
        a: &Activations,
    ) -> Result<(Tensor, EncoderGrads)> {
        let fused_mode = self.executor != Executor::Reference;
        let mut g = w.zeros_like();
        let ai = Axis('i');

        // --- second layer-norm block ---
        let (dg2, dbeta2) = if fused_mode {
            fused::bsb(dy, &a.ln2.ln_input, ai, &a.ln2.stats)?
        } else {
            layernorm_backward_weights(dy, &a.ln2.ln_input, ai, &a.ln2.stats)?
        };
        g.ln2_gamma = dg2;
        g.ln2_beta = dbeta2;
        let (d_ff2b, d_ln2_in) = if fused_mode {
            fused::blnrd(
                dy,
                &a.ln2.ln_input,
                &w.ln2_gamma,
                &a.ln2.mask,
                ai,
                &a.ln2.stats,
            )?
        } else {
            let d_ln =
                layernorm_backward_input(dy, &a.ln2.ln_input, ai, &w.ln2_gamma, &a.ln2.stats)?;
            let d = dropout_backward(&d_ln, &a.ln2.mask)?;
            (d, d_ln)
        };
        g.b2 = bias_grad(&d_ff2b, &[ai])?;

        // --- feed-forward ---
        let d_brd = einsum("iu,ibj->ubj", &[&w.w2, &d_ff2b])?;
        g.w2 = einsum("ibj,ubj->iu", &[&d_ff2b, &a.brd.out])?;
        let (d_ff1, db1) = if fused_mode {
            fused::bdrb_act(
                &d_brd,
                &a.brd.mask,
                &a.brd.pre_activation,
                self.activation,
                &[Axis('u')],
            )?
        } else {
            let after = dropout_backward(&d_brd, &a.brd.mask)?;
            let d = activate_backward(&after, &a.brd.pre_activation, self.activation)?;
            let db = bias_grad(&d, &[Axis('u')])?;
            (d, db)
        };
        g.b1 = db1;
        let d_ln1out_ffn = einsum("ui,ubj->ibj", &[&w.w1, &d_ff1])?;
        g.w1 = einsum("ubj,ibj->ui", &[&d_ff1, &a.ln1.out])?;

        // --- first layer-norm block (residual join) ---
        let (d_ln1out, dg1, dbeta1) = if fused_mode {
            fused::ebsb(&d_ln1out_ffn, &d_ln2_in, &a.ln1.ln_input, ai, &a.ln1.stats)?
        } else {
            let dsum = add(&d_ln1out_ffn, &d_ln2_in)?;
            let (dgam, dbet) =
                layernorm_backward_weights(&dsum, &a.ln1.ln_input, ai, &a.ln1.stats)?;
            (dsum, dgam, dbet)
        };
        g.ln1_gamma = dg1;
        g.ln1_beta = dbeta1;
        let (d_attn_b, d_ln1_in) = if fused_mode {
            fused::blnrd(
                &d_ln1out,
                &a.ln1.ln_input,
                &w.ln1_gamma,
                &a.ln1.mask,
                ai,
                &a.ln1.stats,
            )?
        } else {
            let d_ln = layernorm_backward_input(
                &d_ln1out,
                &a.ln1.ln_input,
                ai,
                &w.ln1_gamma,
                &a.ln1.stats,
            )?;
            let d = dropout_backward(&d_ln, &a.ln1.mask)?;
            (d, d_ln)
        };
        g.bo = if fused_mode {
            fused::baob(&d_attn_b, &[ai])?
        } else {
            bias_grad(&d_attn_b, &[ai])?
        };

        // --- attention output projection ---
        let d_gam = einsum("whi,ibj->whbj", &[&w.wo, &d_attn_b])?;
        g.wo = einsum("whbj,ibj->whi", &[&a.gam, &d_attn_b])?;

        // --- attention core ---
        let d_alpha = einsum("whbk,whbj->hbjk", &[&a.vv, &d_gam])?;
        let d_vv = einsum("whbj,hbjk->whbk", &[&d_gam, &a.sm.alpha])?;
        let d_beta = if fused_mode {
            fused::bs(
                &d_alpha,
                &a.sm.mask,
                &a.sm.softmax,
                Axis('k'),
                self.scaler(),
            )?
        } else {
            let after = dropout_backward(&d_alpha, &a.sm.mask)?;
            let d_soft = softmax_backward(&after, &a.sm.softmax, Axis('k'))?;
            scale(&d_soft, self.scaler())
        };
        let d_qq = einsum("phbk,hbjk->phbj", &[&a.kk, &d_beta])?;
        let d_kk = einsum("phbj,hbjk->phbk", &[&a.qq, &d_beta])?;

        // --- input projections ---
        let ph: &[Axis] = &[Axis('p'), Axis('h')];
        let wh: &[Axis] = &[Axis('w'), Axis('h')];
        let (dbq, dbk, dbv) = if fused_mode {
            fused::baib(&d_qq, &d_kk, &d_vv, [ph, ph, wh])?
        } else {
            (
                bias_grad(&d_qq, ph)?,
                bias_grad(&d_kk, ph)?,
                bias_grad(&d_vv, wh)?,
            )
        };
        g.bq = dbq;
        g.bk = dbk;
        g.bv = dbv;
        let xk = x.relabel("ibk")?;
        g.wq = einsum("phbj,ibj->phi", &[&d_qq, x])?;
        g.wk = einsum("phbk,ibk->phi", &[&d_kk, &xk])?;
        g.wv = einsum("whbk,ibk->whi", &[&d_vv, &xk])?;

        // --- gradient to the encoder input ---
        let d_x1 = einsum("phi,phbj->ibj", &[&w.wq, &d_qq])?;
        let d_x2 = einsum("phi,phbk->ibk", &[&w.wk, &d_kk])?.relabel("ibj")?;
        let d_x3 = einsum("whi,whbk->ibk", &[&w.wv, &d_vv])?.relabel("ibj")?;
        let d_x_proj = add(&add(&d_x1, &d_x2)?, &d_x3)?;
        let dx = if fused_mode {
            fused::bei(&d_x_proj, &d_ln1_in)?
        } else {
            add(&d_x_proj, &d_ln1_in)?
        };
        Ok((dx, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(p: f32, executor: Executor) -> (EncoderLayer, EncoderWeights, Tensor) {
        let dims = EncoderDims::tiny();
        let mut rng = StdRng::seed_from_u64(42);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = Tensor::random(
            xform_tensor::Shape::from_spec("ibj", &dims.size_table()).unwrap(),
            &Uniform::new(-1.0, 1.0),
            &mut rng,
        );
        (EncoderLayer::new(dims, executor, p), w, x)
    }

    /// Unified-API forward with a fixed seed, destructured for tests.
    fn fwd(
        layer: &EncoderLayer,
        x: &Tensor,
        w: &EncoderWeights,
        seed: u64,
    ) -> (Tensor, Activations) {
        let opts = ExecOptions::builder().seed(seed).build();
        layer.forward(x, w, &opts).unwrap().into_pair().unwrap()
    }

    #[test]
    fn forward_output_shape_and_normalization() {
        let (layer, w, x) = setup(0.0, Executor::Fused);
        let (y, _) = fwd(&layer, &x, &w, 1);
        assert_eq!(y.shape().spec(), "ibj");
        // output of a layernorm with unit gamma: per-(b,j) slice has
        // mean ~0 and variance ~1 over i
        let (i_n, b_n, j_n) = (layer.dims.i, layer.dims.b, layer.dims.j);
        for b in 0..b_n {
            for j in 0..j_n {
                let mut mean = 0.0;
                for i in 0..i_n {
                    mean += y.at(&[i, b, j]);
                }
                mean /= i_n as f32;
                assert!(mean.abs() < 1e-4, "mean {mean}");
            }
        }
    }

    #[test]
    fn executors_agree_on_forward() {
        let (fused_layer, w, x) = setup(0.0, Executor::Fused);
        let ref_layer = EncoderLayer::new(fused_layer.dims, Executor::Reference, 0.0);
        let (y1, a1) = fwd(&fused_layer, &x, &w, 2);
        let (y2, a2) = fwd(&ref_layer, &x, &w, 2);
        assert!(y1.max_abs_diff(&y2).unwrap() < 1e-5);
        assert!(a1.qq.max_abs_diff(&a2.qq).unwrap() < 1e-5);
        assert!(a1.sm.alpha.max_abs_diff(&a2.sm.alpha).unwrap() < 1e-5);
        assert!(a1.ln1.ln_input.max_abs_diff(&a2.ln1.ln_input).unwrap() < 1e-5);
    }

    #[test]
    fn executors_agree_on_backward_given_same_activations() {
        let (fused_layer, w, x) = setup(0.3, Executor::Fused);
        let (y, acts) = fwd(&fused_layer, &x, &w, 3);
        let dy = Tensor::random(
            y.shape().clone(),
            &Uniform::new(-1.0, 1.0),
            &mut StdRng::seed_from_u64(4),
        );
        let ref_layer = EncoderLayer::new(fused_layer.dims, Executor::Reference, 0.3);
        let (dx1, g1) = fused_layer.backward(&dy, &x, &w, &acts).unwrap();
        let (dx2, g2) = ref_layer.backward(&dy, &x, &w, &acts).unwrap();
        assert!(dx1.max_abs_diff(&dx2).unwrap() < 1e-4);
        for ((n1, t1), (_, t2)) in g1.fields().iter().zip(g2.fields()) {
            assert!(
                t1.max_abs_diff(t2).unwrap() < 1e-4,
                "gradient {n1} disagrees"
            );
        }
    }

    #[test]
    fn parallel_forward_is_bitwise_equal_to_serial() {
        for executor in [Executor::Reference, Executor::Fused] {
            let (layer, w, x) = setup(0.0, executor);
            let (y_serial, a_serial) = fwd(&layer, &x, &w, 8);
            for threads in [2, 4] {
                let opts = ExecOptions::builder().threads(threads).build();
                let (y_par, a_par) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
                assert_eq!(y_par.data(), y_serial.data(), "{executor:?} @{threads}");
                assert_eq!(a_par.gam.data(), a_serial.gam.data());
                assert_eq!(a_par.ln2.ln_input.data(), a_serial.ln2.ln_input.data());
            }
        }
    }

    #[test]
    fn parallel_dropout_is_thread_count_invariant() {
        let (layer, w, x) = setup(0.5, Executor::Fused);
        let mk = |threads| ExecOptions::builder().threads(threads).seed(99).build();
        let (y2, a2) = layer.forward(&x, &w, &mk(2)).unwrap().into_pair().unwrap();
        let (y4, a4) = layer.forward(&x, &w, &mk(4)).unwrap().into_pair().unwrap();
        assert_eq!(y2.data(), y4.data());
        assert_eq!(a2.brd.mask.data(), a4.brd.mask.data());
        assert!(a2.brd.mask.data().contains(&0.0));
    }

    #[test]
    fn activations_can_be_skipped() {
        let (layer, w, x) = setup(0.0, Executor::Fused);
        let out = layer
            .forward(
                &x,
                &w,
                &ExecOptions::builder().collect_activations(false).build(),
            )
            .unwrap();
        assert!(out.activations.is_none());
        let (y_full, _) = fwd(&layer, &x, &w, 0x5eed);
        assert_eq!(out.y.data(), y_full.data());
        assert!(out.into_pair().is_err(), "into_pair must refuse");
    }

    #[test]
    fn plan_override_without_certificate_cannot_run_parallel() {
        let (layer, w, x) = setup(0.0, Executor::Fused);
        let pf = interp::encoder_fused(&layer.dims).unwrap();
        let over = xform_core::plan::PlanOverride {
            graph: &pf.graph,
            plan: &pf.plan,
            cert: None,
        };
        // serial override works …
        let y = layer
            .forward(&x, &w, &ExecOptions::builder().plan(Some(over)).build())
            .unwrap()
            .y;
        assert_eq!(y.shape().spec(), "ibj");
        // … but a parallel run without a certificate is refused
        let err = layer
            .forward(
                &x,
                &w,
                &ExecOptions::builder().plan(Some(over)).threads(4).build(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("certificate"), "{err}");
    }

    #[test]
    fn dropout_masks_are_saved_and_applied() {
        let (layer, w, x) = setup(0.5, Executor::Fused);
        let (_, acts) = fwd(&layer, &x, &w, 5);
        let zeros = acts.brd.mask.data().iter().filter(|&&m| m == 0.0).count();
        assert!(zeros > 0, "dropout never fired at p=0.5");
        // dropped positions are zero in the output
        let mut idx = vec![0usize; 3];
        loop {
            if acts.brd.mask.at(&idx) == 0.0 {
                assert_eq!(acts.brd.out.at(&idx), 0.0);
            }
            if !acts.brd.out.advance(&mut idx) {
                break;
            }
        }
    }

    #[test]
    fn gelu_encoder_gradients_match_numerical() {
        // spot-check one dx coordinate with the GELU feed-forward
        let (layer, w, x) = setup(0.0, Executor::Fused);
        let layer = layer.with_activation(ActivationKind::Gelu);
        let (y, acts) = fwd(&layer, &x, &w, 60);
        let loss_w = Tensor::random(
            y.shape().clone(),
            &Uniform::new(-1.0, 1.0),
            &mut StdRng::seed_from_u64(61),
        );
        let (dx, _) = layer.backward(&loss_w, &x, &w, &acts).unwrap();
        let loss = |xx: &Tensor| -> f32 {
            let (yy, _) = fwd(&layer, xx, &w, 60);
            yy.iter().map(|(i, v)| loss_w.at(&i) * v).sum()
        };
        let eps = 1e-2f32;
        let idx = vec![1usize, 1, 2];
        let off = x.offset(&idx);
        let mut xp = x.clone();
        xp.data_mut()[off] += eps;
        let mut xm = x.clone();
        xm.data_mut()[off] -= eps;
        let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
        assert!(
            (num - dx.at(&idx)).abs() < 0.05 * (1.0 + num.abs()),
            "GELU dx: numeric {num} vs analytic {}",
            dx.at(&idx)
        );
    }

    /// Central-difference check of the full backward pass, spot-checking a
    /// handful of coordinates of `dx` and of several weight gradients.
    #[test]
    fn gradients_match_numerical() {
        let (layer, w, x) = setup(0.0, Executor::Fused);
        let (y, acts) = fwd(&layer, &x, &w, 6);
        let loss_w = Tensor::random(
            y.shape().clone(),
            &Uniform::new(-1.0, 1.0),
            &mut StdRng::seed_from_u64(7),
        );
        let dy = loss_w.clone();
        let (dx, grads) = layer.backward(&dy, &x, &w, &acts).unwrap();
        let loss = |xx: &Tensor, ww: &EncoderWeights| -> f32 {
            let (yy, _) = fwd(&layer, xx, ww, 6);
            yy.iter().map(|(i, v)| loss_w.at(&i) * v).sum()
        };
        let eps = 1e-2f32;
        // dx spot checks
        for flat in [0usize, 7, 23, 41] {
            let mut idx = vec![0usize; 3];
            for _ in 0..flat {
                x.advance(&mut idx);
            }
            let mut xp = x.clone();
            let off = xp.offset(&idx);
            xp.data_mut()[off] += eps;
            let mut xm = x.clone();
            xm.data_mut()[off] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.at(&idx)).abs() < 0.05 * (1.0 + num.abs()),
                "dx at {idx:?}: numerical {num} vs analytic {}",
                dx.at(&idx)
            );
        }
        // weight gradient spot checks
        let checks: Vec<(&str, usize)> = vec![
            ("wq", 3),
            ("wo", 5),
            ("b1", 2),
            ("w2", 11),
            ("ln2_gamma", 1),
            ("bo", 4),
            ("ln1_beta", 0),
        ];
        for (name, flat) in checks {
            let analytic = {
                let (_, t) = grads
                    .fields()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .unwrap();
                t.data()[flat]
            };
            let mut wp = w.clone();
            let mut wm = w.clone();
            {
                let (_, t) = wp
                    .fields_mut()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .unwrap();
                t.data_mut()[flat] += eps;
            }
            {
                let (_, t) = wm
                    .fields_mut()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .unwrap();
                t.data_mut()[flat] -= eps;
            }
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - analytic).abs() < 0.05 * (1.0 + num.abs()),
                "grad {name}[{flat}]: numerical {num} vs analytic {analytic}"
            );
        }
    }
}
