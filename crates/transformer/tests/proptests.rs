//! Property-based tests of the executable encoder: executor equivalence,
//! layer-norm output statistics, gradient linearity, and dropout scaling —
//! over randomly drawn (valid) layer dimensions.

use proptest::prelude::*;
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_core::plan::ExecOptions;
use xform_dataflow::EncoderDims;
use xform_tensor::{Shape, Tensor};
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::params::EncoderWeights;

fn arb_dims() -> impl Strategy<Value = EncoderDims> {
    (1usize..3, 2usize..5, 1usize..3, 2usize..4, 2usize..6).prop_map(|(b, j, h, p, u)| {
        EncoderDims {
            b,
            j,
            k: j,
            h,
            p,
            i: h * p,
            u,
        }
    })
}

fn batch(dims: &EncoderDims, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::random(
        Shape::from_spec("ibj", &dims.size_table()).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn executors_agree_for_any_dims(dims in arb_dims(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = batch(&dims, seed + 1);
        let fused = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let reference = EncoderLayer::new(dims, Executor::Reference, 0.0);
        let opts = ExecOptions::builder().seed(0).build();
        let (y1, a1) = fused.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
        let (y2, a2) = reference.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
        prop_assert!(y1.max_abs_diff(&y2).unwrap() < 1e-4);
        let (dx1, g1) = fused.backward(&y1, &x, &w, &a1).unwrap();
        let (dx2, g2) = reference.backward(&y2, &x, &w, &a2).unwrap();
        prop_assert!(dx1.max_abs_diff(&dx2).unwrap() < 1e-3);
        for ((n, t1), (_, t2)) in g1.fields().iter().zip(g2.fields()) {
            prop_assert!(t1.max_abs_diff(t2).unwrap() < 1e-3, "gradient {} differs", n);
        }
    }

    #[test]
    fn output_is_layer_normalized(dims in arb_dims(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = batch(&dims, seed + 1);
        let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let opts = ExecOptions::builder().seed(seed).build();
        let (y, _) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
        for b in 0..dims.b {
            for j in 0..dims.j {
                let mean: f32 =
                    (0..dims.i).map(|i| y.at(&[i, b, j])).sum::<f32>() / dims.i as f32;
                prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            }
        }
    }

    #[test]
    fn backward_is_linear_in_dy(dims in arb_dims(), seed in 0u64..500, c in 0.25f32..4.0) {
        // dx(c·dy) == c·dx(dy): backprop is a linear map for fixed acts.
        let mut rng = StdRng::seed_from_u64(seed);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = batch(&dims, seed + 1);
        let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
        let opts = ExecOptions::builder().seed(seed).build();
        let (y, acts) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
        let dy = batch(&dims, seed + 2);
        let scaled = xform_tensor::ops::elementwise::scale(&dy, c);
        let (dx1, _) = layer.backward(&dy, &x, &w, &acts).unwrap();
        let (dx2, _) = layer.backward(&scaled, &x, &w, &acts).unwrap();
        let expect = xform_tensor::ops::elementwise::scale(&dx1, c);
        let scale_mag = y.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assert!(
            dx2.max_abs_diff(&expect).unwrap() < 1e-3 * (1.0 + c) * (1.0 + scale_mag)
        );
    }

    #[test]
    fn dropout_masks_scale_survivors(dims in arb_dims(), p in 0.1f32..0.7, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = EncoderWeights::init(&dims, &mut rng);
        let x = batch(&dims, seed + 1);
        let layer = EncoderLayer::new(dims, Executor::Fused, p);
        let opts = ExecOptions::builder().seed(seed).build();
        let (_, acts) = layer.forward(&x, &w, &opts).unwrap().into_pair().unwrap();
        let keep = 1.0 / (1.0 - p);
        for m in acts.brd.mask.data() {
            prop_assert!(*m == 0.0 || (*m - keep).abs() < 1e-5);
        }
        for m in acts.sm.mask.data() {
            prop_assert!(*m == 0.0 || (*m - keep).abs() < 1e-5);
        }
    }
}
