//! Property-based tests of the performance model: costs are positive,
//! deterministic and physically sensible (bounded by launch overhead and
//! roofline terms), MUE stays in range, and access-pattern degradations
//! never make a kernel faster.

use proptest::prelude::*;

use xform_gpusim::contraction::{
    algorithms, gemm_cost, GemmLayout, GemmShape, InnerRole, MathMode,
};
use xform_gpusim::kernel::{kernel_cost, KernelDesc, TensorAccess};
use xform_gpusim::DeviceSpec;

fn arb_shape() -> impl Strategy<Value = GemmShape> {
    (1usize..129, 1usize..2049, 1usize..2049, 1usize..2049).prop_map(|(batch, m, n, k)| GemmShape {
        batch,
        m,
        n,
        k,
    })
}

fn arb_layout() -> impl Strategy<Value = GemmLayout> {
    (0usize..3, 0usize..3, 0usize..3, any::<bool>()).prop_map(|(a, b, c, blocked)| {
        let roles = [InnerRole::M, InnerRole::K, InnerRole::Batch];
        let c_roles = [InnerRole::M, InnerRole::N, InnerRole::Batch];
        GemmLayout {
            a_inner: roles[a],
            b_inner: [InnerRole::N, InnerRole::K, InnerRole::Batch][b],
            c_inner: c_roles[c],
            blocked,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gemm_cost_is_physical(shape in arb_shape(), layout in arb_layout(), algo_id in 0usize..8) {
        let device = DeviceSpec::v100();
        let algo = algorithms()[algo_id];
        let cost = gemm_cost(&device, shape, layout, algo, MathMode::TensorCore);
        prop_assert!(cost.time_us.is_finite() && cost.time_us > 0.0);
        prop_assert!(cost.time_us >= device.kernel_launch_us);
        prop_assert!(cost.moved_words >= shape.min_words() * 0.999);
        // never faster than the absolute roofline (125 Tflop/s)
        let roofline_us = shape.flop() / (device.tensor_core_tflops * 1e12) * 1e6;
        prop_assert!(cost.time_us + 1e-9 >= roofline_us, "beat the roofline");
        prop_assert!((0.0..=1.0).contains(&cost.bandwidth_frac));
    }

    #[test]
    fn gemm_cost_is_deterministic(shape in arb_shape(), algo_id in 0usize..8) {
        let device = DeviceSpec::v100();
        let algo = algorithms()[algo_id];
        let a = gemm_cost(&device, shape, GemmLayout::ideal(), algo, MathMode::TensorCore);
        let b = gemm_cost(&device, shape, GemmLayout::ideal(), algo, MathMode::TensorCore);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn deeper_reduction_costs_more(m in 64usize..1025, n in 64usize..1025, k in 64usize..1025) {
        // Quadrupling K (pure work, no extra parallelism) must cost more.
        // Scaling M/N instead can be nearly free when the GPU was severely
        // underutilized — that near-cancellation is physical, so the
        // monotonicity property is stated over the reduction depth.
        let device = DeviceSpec::v100();
        let algo = algorithms()[3];
        let shape = GemmShape { batch: 1, m, n, k };
        let big = GemmShape { k: k * 4, ..shape };
        let t1 = gemm_cost(&device, shape, GemmLayout::ideal(), algo, MathMode::TensorCore);
        let t2 = gemm_cost(&device, big, GemmLayout::ideal(), algo, MathMode::TensorCore);
        prop_assert!(t2.time_us > t1.time_us);
    }

    #[test]
    fn access_degradation_never_speeds_kernels(
        words in 1024u64..(1 << 24),
        flop_per_word in 0u64..8,
        key in 0u64..10_000,
    ) {
        let device = DeviceSpec::v100();
        let mk = |vectorized: bool, coalesced: bool| KernelDesc {
            flop: words * flop_per_word,
            accesses: vec![
                TensorAccess { words, is_input: true, vectorized, coalesced },
                TensorAccess { words, is_input: false, vectorized, coalesced },
            ],
            has_reduction: false,
            warp_matches_reduce: true,
            reduce_contiguous: true,
            two_pass: false,
            config_key: key,
        };
        let fast = kernel_cost(&device, &mk(true, false));
        let mid = kernel_cost(&device, &mk(false, true));
        let slow = kernel_cost(&device, &mk(false, false));
        prop_assert!(fast.time_us <= mid.time_us);
        prop_assert!(mid.time_us <= slow.time_us);
    }

    #[test]
    fn reduction_penalties_compose_monotonically(
        words in 4096u64..(1 << 22),
        key in 0u64..10_000,
    ) {
        let device = DeviceSpec::v100();
        let mk = |warp_ok: bool, contiguous: bool| KernelDesc {
            flop: 4 * words,
            accesses: vec![
                TensorAccess { words, is_input: true, vectorized: true, coalesced: false },
                TensorAccess { words, is_input: false, vectorized: true, coalesced: false },
            ],
            has_reduction: true,
            warp_matches_reduce: warp_ok,
            reduce_contiguous: contiguous,
            two_pass: true,
            config_key: key,
        };
        let best = kernel_cost(&device, &mk(true, true));
        let worse = kernel_cost(&device, &mk(false, true));
        let worst = kernel_cost(&device, &mk(false, false));
        prop_assert!(best.time_us <= worse.time_us);
        prop_assert!(worse.time_us <= worst.time_us);
    }

    #[test]
    fn fp16_mode_never_beats_tensor_cores_on_large_gemms(
        m in 512usize..4097, n in 512usize..4097, k in 512usize..4097,
    ) {
        let device = DeviceSpec::v100();
        let shape = GemmShape { batch: 1, m, n, k };
        let algo = algorithms()[3];
        let tc = gemm_cost(&device, shape, GemmLayout::ideal(), algo, MathMode::TensorCore);
        let fp = gemm_cost(&device, shape, GemmLayout::ideal(), algo, MathMode::Fp16);
        prop_assert!(tc.time_us < fp.time_us);
    }
}

mod mue_props {
    use super::*;
    use xform_dataflow::{build, EncoderDims};
    use xform_gpusim::mue::mue;
    use xform_gpusim::opmodel::{config_space, op_cost, OpConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn mue_in_range_for_random_configs(op_pick in 0usize..50, cfg_pick in 0usize..200) {
            let dims = EncoderDims::bert_large();
            let e = build::encoder(&dims);
            let device = DeviceSpec::v100();
            let ops = e.graph.ops();
            let op = ops[op_pick % ops.len()];
            let space = config_space(&e.graph, op).unwrap();
            let cfg: &OpConfig = &space[cfg_pick % space.len()];
            if let Ok(cost) = op_cost(&device, &e.graph, op, cfg) {
                let m = mue(&e.graph, op, &cost);
                prop_assert!((0.0..=100.0).contains(&m.value));
                prop_assert!(m.d_words >= m.q_words);
            }
        }
    }
}
