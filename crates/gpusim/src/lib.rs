//! Analytical V100 performance model — the simulated hardware substrate.
//!
//! The paper measures CUDA kernels on V100 GPUs; this crate replaces that
//! testbed with a calibrated analytical model (see `DESIGN.md` for the
//! substitution rationale). It prices:
//!
//! * **(batched) GEMMs** ([`contraction`]) with a cuBLAS-style algorithm
//!   family, tensor-core vs FP16 math modes, tile/wave quantization, and
//!   operand-layout sensitivity;
//! * **element-wise and normalization kernels** ([`kernel`]) with
//!   vectorization, coalescing, warp-reduction, register-pressure, and
//!   two-pass-reduction effects — the levers of the paper's Sec. V-B;
//! * **whole dataflow graphs under framework policies** ([`framework`]):
//!   PyTorch / TF+XLA / DeepSpeed / cuDNN-MHA models for Tables IV & V;
//! * **MUE** ([`mue`]), the memory-usage-efficiency metric of Sec. III-C.
//!
//! The recipe's exhaustive layout sweeps drive the model through
//! [`opmodel::config_space`] and [`opmodel::op_cost`].
//!
//! # Examples
//!
//! ```
//! use xform_gpusim::{DeviceSpec, contraction::{GemmShape, GemmLayout, MathMode, best_algo_cost}};
//! let device = DeviceSpec::v100();
//! let shape = GemmShape { batch: 1, m: 4096, n: 4096, k: 1024 };
//! let (_, cost) = best_algo_cost(&device, shape, GemmLayout::ideal(), MathMode::TensorCore);
//! assert!(cost.time_us > 100.0); // a real kernel, not a free lunch
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod contraction;
mod device;
pub mod framework;
pub mod kernel;
pub mod mue;
pub mod opmodel;

pub use contraction::KernelCost;
pub use device::{config_noise, noise_key, DeviceSpec};
