//! Analytical model of cuBLAS-style (batched) GEMM kernels.
//!
//! This is the stand-in for the cuBLAS library the paper benchmarks
//! (Sec. V-A): a family of algorithms with different tile shapes, a
//! heuristic default selection that is sometimes markedly worse than the
//! best algorithm, tensor-core vs FP16-FPU math modes, and operand-layout
//! sensitivity. The model composes:
//!
//! * **tile quantization** — padding waste when M/N are not tile multiples;
//! * **wave quantization** — idle SMs in the last wave of thread blocks;
//! * **K-ramp** — pipeline fill cost, penalizing small reduction dims
//!   (this is why the `QKᵀ`-shaped batched GEMMs with K = 64 sit far below
//!   peak in Table III);
//! * **operand-layout efficiency** — which logical role (M/N/K/batch) owns
//!   each operand's contiguous axis determines vector-load friendliness;
//! * **tile-replay memory traffic** — A/B panels are re-read once per
//!   opposing tile row/column (bounded by an L2 reuse factor), which is
//!   what keeps the MUE of even compute-bound GEMMs below 50%
//!   (Sec. VIII-B).

use crate::device::{config_noise, noise_key, DeviceSpec};

/// Collapsed problem sizes of a (batched) GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Number of independent GEMMs.
    pub batch: usize,
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
}

impl GemmShape {
    /// Flop performed (`2·batch·M·N·K`).
    pub fn flop(&self) -> f64 {
        2.0 * self.batch as f64 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Minimum words moved: read A and B once, write C once.
    pub fn min_words(&self) -> f64 {
        let b = self.batch as f64;
        b * (self.m as f64 * self.k as f64
            + self.k as f64 * self.n as f64
            + self.m as f64 * self.n as f64)
    }
}

/// Which GEMM role owns an operand's innermost (contiguous) memory axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerRole {
    /// The M group is contiguous.
    M,
    /// The N group is contiguous.
    N,
    /// The K (reduction) group is contiguous.
    K,
    /// A batch axis is contiguous (forces strided, element-wise access).
    Batch,
}

/// Layout quality summary of the three operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmLayout {
    /// Innermost role of operand A (logical M×K).
    pub a_inner: InnerRole,
    /// Innermost role of operand B (logical K×N).
    pub b_inner: InnerRole,
    /// Innermost role of the output C (logical M×N).
    pub c_inner: InnerRole,
    /// Whether each role's axes form contiguous blocks in memory, so the
    /// problem maps onto a plain (strided-batched) GEMM without repacking.
    pub blocked: bool,
}

impl GemmLayout {
    /// The canonical best layout: K contiguous in both inputs ("TN" in BLAS
    /// terms), N contiguous in the output.
    pub fn ideal() -> Self {
        GemmLayout {
            a_inner: InnerRole::K,
            b_inner: InnerRole::K,
            c_inner: InnerRole::N,
            blocked: true,
        }
    }

    /// Vector-load efficiency contributed by the operand layouts.
    fn efficiency(&self) -> f64 {
        let input = |r: InnerRole| match r {
            // K-major inputs feed the MMA pipeline directly.
            InnerRole::K => 1.0,
            // M/N-major inputs transpose through shared memory: slightly
            // slower but well supported.
            InnerRole::M | InnerRole::N => 0.92,
            // batch-major defeats coalescing entirely.
            InnerRole::Batch => 0.55,
        };
        let output = match self.c_inner {
            InnerRole::N | InnerRole::M => 1.0,
            InnerRole::K => 0.9, // cannot happen for C, kept for totality
            InnerRole::Batch => 0.6,
        };
        let blocked = if self.blocked { 1.0 } else { 0.72 };
        input(self.a_inner) * input(self.b_inner) * output * blocked
    }
}

/// Math mode of the GEMM (Fig. 4's two columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathMode {
    /// FP16 tensor cores with FP32 accumulation (125 Tflop/s peak).
    TensorCore,
    /// Half-precision FPUs (31.4 Tflop/s peak).
    Fp16,
}

/// One simulated GEMM algorithm (a tile shape, as in CUTLASS/cuBLAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmAlgo {
    /// Algorithm id, as passed to `cublasGemmEx`-style selection.
    pub id: usize,
    /// Thread-block tile rows.
    pub tile_m: usize,
    /// Thread-block tile columns.
    pub tile_n: usize,
}

/// The simulated algorithm family (distinct tile shapes).
pub fn algorithms() -> Vec<GemmAlgo> {
    [
        (64, 64),
        (64, 128),
        (128, 64),
        (128, 128),
        (128, 256),
        (256, 128),
        (64, 256),
        (256, 64),
    ]
    .iter()
    .enumerate()
    .map(|(id, &(tile_m, tile_n))| GemmAlgo { id, tile_m, tile_n })
    .collect()
}

/// The heuristic default algorithm, modelled after library behaviour: pick
/// the largest square-ish tile that M and N both fill. Like the real
/// heuristic, this is up to ~14% worse than exhaustive selection on some
/// shapes (Sec. V-A).
pub fn heuristic_algorithm(shape: GemmShape) -> GemmAlgo {
    let algos = algorithms();
    let pick = |tm: usize, tn: usize| {
        algos
            .iter()
            .copied()
            .find(|a| a.tile_m == tm && a.tile_n == tn)
            .expect("algorithm family contains this tile")
    };
    if shape.m >= 128 && shape.n >= 128 {
        pick(128, 128)
    } else if shape.m >= 128 {
        pick(128, 64)
    } else if shape.n >= 128 {
        pick(64, 128)
    } else {
        pick(64, 64)
    }
}

/// Modelled cost of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Wall-clock time in µs, including launch overhead.
    pub time_us: f64,
    /// Words actually moved to/from DRAM (≥ the lower bound).
    pub moved_words: f64,
    /// Fraction of peak DRAM bandwidth achieved while moving them.
    pub bandwidth_frac: f64,
    /// Flop performed.
    pub flop: f64,
}

impl KernelCost {
    /// Achieved compute throughput as a percentage of the given peak.
    pub fn pct_of_peak(&self, peak_tflops: f64) -> f64 {
        100.0 * self.flop / (self.time_us * 1e-6) / (peak_tflops * 1e12)
    }
}

/// Models one (batched) GEMM execution.
pub fn gemm_cost(
    device: &DeviceSpec,
    shape: GemmShape,
    layout: GemmLayout,
    algo: GemmAlgo,
    math: MathMode,
) -> KernelCost {
    let flop = shape.flop();

    // --- compute side ---
    let tiles_m = shape.m.div_ceil(algo.tile_m);
    let tiles_n = shape.n.div_ceil(algo.tile_n);
    let quant_eff = (shape.m as f64 * shape.n as f64)
        / ((tiles_m * algo.tile_m) as f64 * (tiles_n * algo.tile_n) as f64);
    let blocks = shape.batch * tiles_m * tiles_n;
    let waves = blocks.div_ceil(device.sms);
    let wave_eff = blocks as f64 / (waves * device.sms) as f64;
    let (peak, arch_eff, k_ramp) = match math {
        MathMode::TensorCore => (device.tensor_core_tflops, device.gemm_efficiency, 96.0),
        MathMode::Fp16 => (device.fp16_tflops, 0.85, 32.0),
    };
    let k_eff = shape.k as f64 / (shape.k as f64 + k_ramp);
    // Smaller thread-block tiles do less register blocking per MMA and pay
    // relatively more prologue/epilogue, so their per-SM efficiency drops;
    // this is what keeps libraries from always using 64×64 tiles to dodge
    // wave quantization.
    let tile_area = (algo.tile_m * algo.tile_n) as f64;
    let tile_eff = (tile_area / (128.0 * 128.0)).min(1.0).powf(0.1);
    let layout_eff = layout.efficiency();
    let noise = config_noise(
        noise_key(
            &["gemm"],
            &[
                shape.batch as u64,
                shape.m as u64,
                shape.n as u64,
                shape.k as u64,
                algo.id as u64,
                layout_key(layout),
                math as u64,
            ],
        ),
        0.02,
    );
    let eff = (arch_eff * quant_eff * wave_eff * k_eff * tile_eff * layout_eff * noise).max(1e-3);
    let compute_us = device.compute_time_us(flop, peak, eff);

    // --- memory side: tile replay bounded by L2 reuse ---
    let b = shape.batch as f64;
    let replay_a = (tiles_n as f64).sqrt().max(1.0);
    let replay_b = (tiles_m as f64).sqrt().max(1.0);
    let moved_words = b
        * (shape.m as f64 * shape.k as f64 * replay_a
            + shape.k as f64 * shape.n as f64 * replay_b
            + shape.m as f64 * shape.n as f64);
    let bw_frac = device.stream_efficiency * layout_eff.max(0.3);
    let memory_us = device.stream_time_us(moved_words * device.word_bytes as f64, bw_frac);

    KernelCost {
        time_us: device.kernel_launch_us + compute_us.max(memory_us),
        moved_words,
        bandwidth_frac: bw_frac,
        flop,
    }
}

fn layout_key(layout: GemmLayout) -> u64 {
    let r = |x: InnerRole| match x {
        InnerRole::M => 0u64,
        InnerRole::N => 1,
        InnerRole::K => 2,
        InnerRole::Batch => 3,
    };
    (r(layout.a_inner) << 4)
        | (r(layout.b_inner) << 2)
        | r(layout.c_inner)
        | ((layout.blocked as u64) << 6)
}

/// Cost with the best algorithm for a fixed layout and math mode.
pub fn best_algo_cost(
    device: &DeviceSpec,
    shape: GemmShape,
    layout: GemmLayout,
    math: MathMode,
) -> (GemmAlgo, KernelCost) {
    algorithms()
        .into_iter()
        .map(|a| (a, gemm_cost(device, shape, layout, a, math)))
        .min_by(|x, y| x.1.time_us.total_cmp(&y.1.time_us))
        .expect("algorithm family is non-empty")
}

/// All `(a_inner, b_inner, c_inner, blocked)` layout combinations.
pub fn all_layouts() -> Vec<GemmLayout> {
    let roles = [InnerRole::M, InnerRole::N, InnerRole::K, InnerRole::Batch];
    let mut out = Vec::new();
    for &a in &roles {
        if a == InnerRole::N {
            continue; // N does not occur in operand A
        }
        for &b in &roles {
            if b == InnerRole::M {
                continue;
            }
            for &c in [InnerRole::M, InnerRole::N, InnerRole::Batch].iter() {
                for blocked in [true, false] {
                    out.push(GemmLayout {
                        a_inner: a,
                        b_inner: b,
                        c_inner: c,
                        blocked,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn large_gemm_runs_near_calibrated_efficiency() {
        // Linear layer of BERT-large: M=4096, N=4096, K=1024 (Fig. 4 tile).
        let shape = GemmShape {
            batch: 1,
            m: 4096,
            n: 4096,
            k: 1024,
        };
        let (_, cost) = best_algo_cost(&v100(), shape, GemmLayout::ideal(), MathMode::TensorCore);
        // Paper measures this GEMM at ~402-451 µs (55-62% of peak).
        assert!(
            cost.time_us > 300.0 && cost.time_us < 550.0,
            "{}",
            cost.time_us
        );
        let pct = cost.pct_of_peak(125.0);
        assert!(pct > 45.0 && pct < 70.0, "pct {pct}");
    }

    #[test]
    fn small_k_batched_gemm_underutilizes_tensor_cores() {
        // QKᵀ: batch=128, M=N=512, K=64 — Table III reports 16-26% of peak.
        let shape = GemmShape {
            batch: 128,
            m: 512,
            n: 512,
            k: 64,
        };
        let (_, cost) = best_algo_cost(&v100(), shape, GemmLayout::ideal(), MathMode::TensorCore);
        let pct = cost.pct_of_peak(125.0);
        assert!(
            pct < 35.0,
            "expected tensor-core underutilization, got {pct}%"
        );
        assert!(pct > 8.0, "model collapsed: {pct}%");
    }

    #[test]
    fn fp16_competitive_when_dims_small() {
        // Paper (Sec. V-A): when one matrix dimension is 64, FP16 FPUs come
        // close to tensor cores.
        let small = GemmShape {
            batch: 128,
            m: 512,
            n: 64,
            k: 512,
        };
        let (_, tc) = best_algo_cost(&v100(), small, GemmLayout::ideal(), MathMode::TensorCore);
        let (_, fp) = best_algo_cost(&v100(), small, GemmLayout::ideal(), MathMode::Fp16);
        assert!(
            fp.time_us / tc.time_us < 2.5,
            "fp16 {} vs tc {}",
            fp.time_us,
            tc.time_us
        );

        let big = GemmShape {
            batch: 1,
            m: 4096,
            n: 4096,
            k: 1024,
        };
        let (_, tc_b) = best_algo_cost(&v100(), big, GemmLayout::ideal(), MathMode::TensorCore);
        let (_, fp_b) = best_algo_cost(&v100(), big, GemmLayout::ideal(), MathMode::Fp16);
        assert!(
            fp_b.time_us / tc_b.time_us > 2.5,
            "tensor cores should win on large GEMMs"
        );
    }

    #[test]
    fn heuristic_is_sometimes_worse_but_never_catastrophic() {
        let shapes = [
            GemmShape {
                batch: 1,
                m: 4096,
                n: 1024,
                k: 1024,
            },
            GemmShape {
                batch: 128,
                m: 512,
                n: 512,
                k: 64,
            },
            GemmShape {
                batch: 128,
                m: 512,
                n: 64,
                k: 512,
            },
            GemmShape {
                batch: 1,
                m: 4096,
                n: 4096,
                k: 1024,
            },
            GemmShape {
                batch: 1,
                m: 1024,
                n: 1024,
                k: 4096,
            },
        ];
        let mut worst_gap = 0.0f64;
        for shape in shapes {
            let h = gemm_cost(
                &v100(),
                shape,
                GemmLayout::ideal(),
                heuristic_algorithm(shape),
                MathMode::TensorCore,
            );
            let (_, best) =
                best_algo_cost(&v100(), shape, GemmLayout::ideal(), MathMode::TensorCore);
            let gap = h.time_us / best.time_us - 1.0;
            assert!(gap >= -1e-9, "heuristic beat the best algorithm");
            worst_gap = worst_gap.max(gap);
        }
        // Sec. V-A: heuristic up to ~14% worse than best.
        assert!(worst_gap > 0.005, "heuristic never suboptimal: {worst_gap}");
        assert!(
            worst_gap < 0.40,
            "heuristic unrealistically bad: {worst_gap}"
        );
    }

    #[test]
    fn bad_layouts_are_slower() {
        let shape = GemmShape {
            batch: 128,
            m: 512,
            n: 512,
            k: 64,
        };
        let good = best_algo_cost(&v100(), shape, GemmLayout::ideal(), MathMode::TensorCore).1;
        let bad_layout = GemmLayout {
            a_inner: InnerRole::Batch,
            b_inner: InnerRole::Batch,
            c_inner: InnerRole::Batch,
            blocked: false,
        };
        let bad = best_algo_cost(&v100(), shape, bad_layout, MathMode::TensorCore).1;
        assert!(bad.time_us > 1.5 * good.time_us);
    }

    #[test]
    fn moved_words_at_least_lower_bound() {
        for shape in [
            GemmShape {
                batch: 1,
                m: 64,
                n: 64,
                k: 64,
            },
            GemmShape {
                batch: 16,
                m: 512,
                n: 512,
                k: 64,
            },
            GemmShape {
                batch: 1,
                m: 4096,
                n: 4096,
                k: 4096,
            },
        ] {
            let c = gemm_cost(
                &v100(),
                shape,
                GemmLayout::ideal(),
                algorithms()[3],
                MathMode::TensorCore,
            );
            assert!(c.moved_words >= shape.min_words() * 0.999);
        }
    }

    #[test]
    fn layout_space_is_complete_and_distinct() {
        let all = all_layouts();
        assert_eq!(all.len(), 3 * 3 * 3 * 2);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn cost_is_deterministic() {
        let shape = GemmShape {
            batch: 2,
            m: 256,
            n: 256,
            k: 256,
        };
        let a = gemm_cost(
            &v100(),
            shape,
            GemmLayout::ideal(),
            algorithms()[0],
            MathMode::TensorCore,
        );
        let b = gemm_cost(
            &v100(),
            shape,
            GemmLayout::ideal(),
            algorithms()[0],
            MathMode::TensorCore,
        );
        assert_eq!(a, b);
    }
}
