//! Bridges dataflow-graph operators to the performance model.
//!
//! An [`OpConfig`] fixes every tunable of one operator — tensor layouts,
//! vectorization axis, warp-reduction axis, GEMM algorithm and math mode —
//! and [`op_cost`] prices it on a device. Enumerating [`config_space`] and
//! pricing every element is exactly the exhaustive benchmarking step of the
//! paper's recipe (Sec. V); the distributions it produces are Figs. 4 & 5.

use xform_dataflow::{Graph, NodeId, OpKind};
use xform_tensor::einsum::EinsumSpec;
use xform_tensor::{Axis, Result, Shape, TensorError};

use crate::contraction::{
    algorithms, gemm_cost, GemmAlgo, GemmLayout, GemmShape, InnerRole, KernelCost, MathMode,
};
use crate::device::{noise_key, DeviceSpec};
use crate::kernel::{kernel_cost, KernelDesc, TensorAccess};

/// One fully specified configuration of an operator.
///
/// Layout strings name the tensor's axes in memory order, outermost first
/// (see [`xform_tensor::Layout::from_axis_order`]). Secondary tensors of
/// the same shape as the primary input/output follow its layout, mirroring
/// the paper's practice of tying masks and saved values to their producer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpConfig {
    /// Memory-order spec of the primary (first) input.
    pub in_spec: String,
    /// Memory-order spec of the second einsum operand, if the op is a
    /// contraction.
    pub in2_spec: Option<String>,
    /// Memory-order spec of the primary output.
    pub out_spec: String,
    /// Axis vectorized / assigned to consecutive threads (non-contractions).
    pub vector_axis: Option<char>,
    /// Axis mapped to the warp reduction (non-contractions with reductions).
    pub warp_axis: Option<char>,
    /// GEMM algorithm id (contractions; ignored otherwise).
    pub algo: usize,
    /// Math mode (contractions; ignored otherwise).
    pub math: MathMode,
}

impl OpConfig {
    /// The configuration a framework uses without tuning: layouts keep the
    /// logical axis order except that a reduced axis is stored contiguously
    /// (as real frameworks store the embedding axis innermost), threads
    /// vectorize along the contiguous axis, warp reduction runs on the
    /// operator's own reduction axis, algorithm 3 (128×128 tiles), tensor
    /// cores.
    ///
    /// # Errors
    ///
    /// Returns an error if `op` is not a live operator with data inputs and
    /// outputs.
    pub fn natural(graph: &Graph, op: NodeId) -> Result<OpConfig> {
        let info = OpInfo::gather(graph, op)?;
        let reorder = |axes: &[char]| -> String {
            let mut s: String = axes
                .iter()
                .filter(|&&c| Some(c) != info.reduce_axis)
                .collect();
            if let Some(r) = info.reduce_axis {
                if axes.contains(&r) {
                    s.push(r);
                }
            }
            s
        };
        let in_spec = reorder(&info.in_axes);
        let vector_axis = in_spec.chars().last();
        Ok(OpConfig {
            in_spec,
            in2_spec: info.in2_axes.as_ref().map(|a| a.iter().collect()),
            out_spec: reorder(&info.out_axes),
            vector_axis,
            warp_axis: info.reduce_axis,
            algo: 3,
            math: MathMode::TensorCore,
        })
    }
}

/// Logical description of one operator extracted from the graph.
#[derive(Debug, Clone)]
struct OpInfo {
    name: String,
    kind: OpKind,
    in_shape: Shape,
    in2_shape: Option<Shape>,
    out_shape: Shape,
    in_axes: Vec<char>,
    in2_axes: Option<Vec<char>>,
    out_axes: Vec<char>,
    reduce_axis: Option<char>,
    input_words: u64,
    output_words: u64,
    flop: u64,
}

impl OpInfo {
    fn gather(graph: &Graph, op: NodeId) -> Result<OpInfo> {
        let node = graph
            .op(op)
            .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
        let inputs = graph.inputs_of(op);
        let outputs = graph.outputs_of(op);
        let shape_of = |id: NodeId| -> Result<Shape> {
            graph
                .data(id)
                .map(|d| d.shape.clone())
                .ok_or_else(|| TensorError::Unsupported("edge endpoint is not data".into()))
        };
        // Primary tensors: einsums keep their positional operands; other
        // kernels key their access pattern off the largest input/output
        // (fused kernels may list small side tensors like bias gradients
        // first).
        let largest = |ids: &[NodeId]| -> Option<NodeId> {
            ids.iter()
                .copied()
                .max_by_key(|&d| graph.data(d).map(|n| n.shape.num_elements()).unwrap_or(0))
        };
        let is_einsum = matches!(
            node.kind,
            OpKind::Einsum(_) | OpKind::ContractionEpilogue { .. }
        );
        let in_id = if is_einsum {
            inputs.first().copied()
        } else {
            largest(&inputs)
        }
        .ok_or_else(|| TensorError::Unsupported(format!("`{}` has no inputs", node.name)))?;
        let out_id = if is_einsum {
            outputs.first().copied()
        } else {
            largest(&outputs)
        }
        .ok_or_else(|| TensorError::Unsupported(format!("`{}` has no outputs", node.name)))?;
        let in_shape = shape_of(in_id)?;
        let out_shape = shape_of(out_id)?;
        let in2_shape = if is_einsum && inputs.len() >= 2 {
            Some(shape_of(inputs[1])?)
        } else {
            None
        };
        let axes = |s: &Shape| s.axes().iter().map(|a| a.name()).collect::<Vec<char>>();
        Ok(OpInfo {
            name: node.name.clone(),
            kind: node.kind.clone(),
            in_axes: axes(&in_shape),
            in2_axes: in2_shape.as_ref().map(&axes),
            out_axes: axes(&out_shape),
            reduce_axis: node.kind.reduce_axis().map(|a| a.name()),
            in_shape,
            in2_shape,
            out_shape,
            input_words: graph.input_words(op),
            output_words: graph.output_words(op),
            flop: xform_dataflow::flops::op_flop(graph, op).unwrap_or(0),
        })
    }
}

/// A reusable pricing model for one operator: gathers the operator's
/// shapes and roles once, then prices configurations cheaply. Use this for
/// sweeps; [`op_cost`] is the one-shot convenience wrapper.
#[derive(Debug, Clone)]
pub struct OpModel {
    info: OpInfo,
}

impl OpModel {
    /// Builds the model for one operator.
    ///
    /// # Errors
    ///
    /// Returns an error if `op` is not a live operator with data inputs
    /// and outputs.
    pub fn new(graph: &Graph, op: NodeId) -> Result<OpModel> {
        Ok(OpModel {
            info: OpInfo::gather(graph, op)?,
        })
    }

    /// Prices one configuration on a device.
    ///
    /// # Errors
    ///
    /// Returns an error if a layout spec is not a permutation of the
    /// tensor's axes, or a contraction does not map onto a GEMM.
    pub fn cost(&self, device: &DeviceSpec, cfg: &OpConfig) -> Result<KernelCost> {
        match &self.info.kind.clone() {
            // a GEMM-epilogue mega-kernel is contraction-bound: the fused
            // element-wise tail rides the GEMM's output tiles for free
            OpKind::Einsum(spec) | OpKind::ContractionEpilogue { spec, .. } => {
                contraction_cost(device, &self.info, spec, cfg)
            }
            _ => normalization_cost(device, &self.info, cfg),
        }
    }
}

/// Prices one operator configuration on a device.
///
/// # Errors
///
/// Returns an error if the op id is invalid, a layout spec is not a
/// permutation of the tensor's axes, or a contraction does not map onto a
/// GEMM.
pub fn op_cost(
    device: &DeviceSpec,
    graph: &Graph,
    op: NodeId,
    cfg: &OpConfig,
) -> Result<KernelCost> {
    OpModel::new(graph, op)?.cost(device, cfg)
}

/// Returns `cost` with `hit_words` of its modelled traffic served from
/// on-chip caches instead of the DRAM interface: `moved_words` drops by
/// the hit volume but never below `floor_words` (the step's algorithmic
/// demand — keeping the discounted cost a valid MUE denominator with
/// `D ≥ Q`). `time_us` and `bandwidth_frac` are left untouched: a hit
/// removes DRAM-interface traffic, not work from the kernel's critical
/// path in this model.
pub fn cache_discounted(cost: &KernelCost, hit_words: f64, floor_words: f64) -> KernelCost {
    let moved = (cost.moved_words - hit_words.max(0.0)).max(floor_words.max(0.0));
    KernelCost {
        moved_words: moved,
        ..*cost
    }
}

fn contraction_cost(
    device: &DeviceSpec,
    info: &OpInfo,
    spec: &EinsumSpec,
    cfg: &OpConfig,
) -> Result<KernelCost> {
    let in2_shape = info.in2_shape.as_ref().ok_or_else(|| {
        TensorError::Unsupported(format!("contraction `{}` has one input", info.name))
    })?;
    let class = spec.classify()?;
    let sizes = spec.gemm_sizes(&info.in_shape, in2_shape)?;
    let shape = GemmShape {
        batch: sizes.batch,
        m: sizes.m,
        n: sizes.n,
        k: sizes.k,
    };
    let in2_spec = cfg.in2_spec.as_deref().ok_or_else(|| {
        TensorError::Unsupported(format!(
            "contraction `{}` config lacks in2 layout",
            info.name
        ))
    })?;
    let role_of = |axis: char, operand: Operand| -> InnerRole {
        let ax = Axis(axis);
        if class.batch.contains(&ax) {
            InnerRole::Batch
        } else if class.k.contains(&ax) {
            InnerRole::K
        } else {
            match operand {
                Operand::A => InnerRole::M,
                Operand::B => InnerRole::N,
                Operand::C => {
                    if class.m.contains(&ax) {
                        InnerRole::M
                    } else {
                        InnerRole::N
                    }
                }
            }
        }
    };
    let validate = |spec_str: &str, axes: &[char]| -> Result<()> {
        if spec_str.len() != axes.len() || !spec_str.chars().all(|c| axes.contains(&c)) {
            return Err(TensorError::InvalidPermutation);
        }
        Ok(())
    };
    validate(&cfg.in_spec, &info.in_axes)?;
    validate(in2_spec, info.in2_axes.as_ref().expect("einsum has in2"))?;
    validate(&cfg.out_spec, &info.out_axes)?;
    let inner = |s: &str| s.chars().last().expect("non-empty layout spec");
    let blocked = [&cfg.in_spec, in2_spec, &cfg.out_spec]
        .iter()
        .zip([Operand::A, Operand::B, Operand::C])
        .all(|(s, operand)| {
            let roles: Vec<InnerRole> = s.chars().map(|c| role_of(c, operand)).collect();
            // role groups must form contiguous segments, innermost not batch
            let mut segments = 1;
            for w in roles.windows(2) {
                if w[0] != w[1] {
                    segments += 1;
                }
            }
            let distinct = {
                let mut d: Vec<InnerRole> = Vec::new();
                for r in &roles {
                    if !d.contains(r) {
                        d.push(*r);
                    }
                }
                d.len()
            };
            segments == distinct && *roles.last().expect("non-empty") != InnerRole::Batch
        });
    let layout = GemmLayout {
        a_inner: role_of(inner(&cfg.in_spec), Operand::A),
        b_inner: role_of(inner(in2_spec), Operand::B),
        c_inner: role_of(inner(&cfg.out_spec), Operand::C),
        blocked,
    };
    let algos = algorithms();
    let algo: GemmAlgo = algos
        .get(cfg.algo)
        .copied()
        .ok_or_else(|| TensorError::Unsupported(format!("unknown GEMM algorithm {}", cfg.algo)))?;
    Ok(gemm_cost(device, shape, layout, algo, cfg.math))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    A,
    B,
    C,
}

fn normalization_cost(device: &DeviceSpec, info: &OpInfo, cfg: &OpConfig) -> Result<KernelCost> {
    let vector_axis = cfg.vector_axis;
    let mut accesses = Vec::new();
    let vec_ok = |layout_spec: &str, shape: &Shape| -> (bool, bool) {
        let inner = layout_spec.chars().last().expect("non-empty layout");
        match vector_axis {
            Some(v) if v == inner => {
                let divisible = shape.size(Axis(inner)).map(|n| n % 8 == 0).unwrap_or(false);
                (divisible, true)
            }
            _ => (false, false),
        }
    };
    // primary input (slice readers of stacked containers move only their
    // memlet volume, never the whole container)
    {
        if cfg.in_spec.len() != info.in_axes.len()
            || !cfg.in_spec.chars().all(|c| info.in_axes.contains(&c))
        {
            return Err(TensorError::InvalidPermutation);
        }
        let (v, c) = vec_ok(&cfg.in_spec, &info.in_shape);
        accesses.push(TensorAccess {
            words: (info.in_shape.num_elements() as u64).min(info.input_words),
            is_input: true,
            vectorized: v,
            coalesced: c,
        });
    }
    // remaining input volume (masks, residuals, saved tensors): assume they
    // share the primary input layout; weights/biases are tiny and ignored
    // for access-pattern purposes but their words still move.
    let secondary_in = info.input_words.saturating_sub(accesses[0].words);
    if secondary_in > 0 {
        let (v, c) = vec_ok(&cfg.in_spec, &info.in_shape);
        accesses.push(TensorAccess {
            words: secondary_in,
            is_input: true,
            vectorized: v,
            coalesced: c,
        });
    }
    // primary output. When the output names its axes differently from the
    // input (the K/V streams use `k`/`w` where the input uses `j`/`p`),
    // the vectorization axis translates positionally.
    {
        if cfg.out_spec.len() != info.out_axes.len()
            || !cfg.out_spec.chars().all(|c| info.out_axes.contains(&c))
        {
            return Err(TensorError::InvalidPermutation);
        }
        let out_vector_axis = match vector_axis {
            Some(v) if info.out_axes.contains(&v) => Some(v),
            Some(v) => info
                .in_axes
                .iter()
                .position(|&c| c == v)
                .and_then(|p| info.out_axes.get(p).copied()),
            None => None,
        };
        let out_vec_ok = |layout_spec: &str, shape: &Shape| -> (bool, bool) {
            let inner = layout_spec.chars().last().expect("non-empty layout");
            match out_vector_axis {
                Some(v) if v == inner => {
                    let divisible = shape.size(Axis(inner)).map(|n| n % 8 == 0).unwrap_or(false);
                    (divisible, true)
                }
                _ => (false, false),
            }
        };
        let (v, c) = out_vec_ok(&cfg.out_spec, &info.out_shape);
        let primary_out = (info.out_shape.num_elements() as u64).min(info.output_words);
        accesses.push(TensorAccess {
            words: primary_out,
            is_input: false,
            vectorized: v,
            coalesced: c,
        });
        let secondary_out = info.output_words.saturating_sub(primary_out);
        if secondary_out > 0 {
            accesses.push(TensorAccess {
                words: secondary_out,
                is_input: false,
                vectorized: v,
                coalesced: c,
            });
        }
    }
    let has_reduction = info.kind.has_reduction();
    let warp_matches_reduce = match (info.reduce_axis, cfg.warp_axis) {
        (Some(r), Some(w)) => r == w,
        (None, _) => true,
        (Some(_), None) => false,
    };
    let reduce_contiguous = match info.reduce_axis {
        Some(r) => cfg.in_spec.ends_with(r) || cfg.vector_axis == Some(r),
        None => true,
    };
    // Reduce-then-map kernels (softmax, layernorm forward, fused kernels
    // that start with a reduction) take two passes over their input.
    let two_pass = matches!(
        info.kind,
        OpKind::Softmax { .. } | OpKind::LayerNorm { .. } | OpKind::SoftmaxGrad { .. }
    ) || matches!(
        &info.kind,
        OpKind::Fused {
            reduce_axis: Some(_),
            ..
        }
    );
    let desc = KernelDesc {
        flop: info.flop,
        accesses,
        has_reduction,
        warp_matches_reduce,
        reduce_contiguous,
        two_pass,
        config_key: noise_key(
            &[&info.name, &cfg.in_spec, &cfg.out_spec],
            &[
                cfg.vector_axis.map(|c| c as u64).unwrap_or(0),
                cfg.warp_axis.map(|c| c as u64).unwrap_or(0),
            ],
        ),
    };
    Ok(kernel_cost(device, &desc))
}

fn permutations(axes: &[char]) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut used = vec![false; axes.len()];
    fn rec(axes: &[char], cur: &mut String, used: &mut [bool], out: &mut Vec<String>) {
        if cur.len() == axes.len() {
            out.push(cur.clone());
            return;
        }
        for i in 0..axes.len() {
            if !used[i] {
                used[i] = true;
                cur.push(axes[i]);
                rec(axes, cur, used, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    rec(axes, &mut cur, &mut used, &mut out);
    out
}

/// Enumerates the full configuration space of one operator: every layout
/// permutation of its primary tensors, plus vectorization / warp axes for
/// normalization kernels, or algorithms × math modes for contractions.
///
/// # Errors
///
/// Returns an error if the op id is invalid.
pub fn config_space(graph: &Graph, op: NodeId) -> Result<Vec<OpConfig>> {
    let info = OpInfo::gather(graph, op)?;
    let mut out = Vec::new();
    match &info.kind {
        OpKind::Einsum(_) => {
            let a_perms = permutations(&info.in_axes);
            let b_perms = permutations(info.in2_axes.as_ref().ok_or_else(|| {
                TensorError::Unsupported(format!("contraction `{}` has one input", info.name))
            })?);
            let c_perms = permutations(&info.out_axes);
            let n_algos = algorithms().len();
            for a in &a_perms {
                for b in &b_perms {
                    for c in &c_perms {
                        for algo in 0..n_algos {
                            for math in [MathMode::TensorCore, MathMode::Fp16] {
                                out.push(OpConfig {
                                    in_spec: a.clone(),
                                    in2_spec: Some(b.clone()),
                                    out_spec: c.clone(),
                                    vector_axis: None,
                                    warp_axis: None,
                                    algo,
                                    math,
                                });
                            }
                        }
                    }
                }
            }
        }
        _ => {
            let in_perms = permutations(&info.in_axes);
            let out_perms = permutations(&info.out_axes);
            let vec_axes: Vec<char> = info.out_axes.clone();
            let warp_axes: Vec<Option<char>> = if info.reduce_axis.is_some() {
                info.in_axes.iter().map(|&c| Some(c)).collect()
            } else {
                vec![None]
            };
            for i in &in_perms {
                for o in &out_perms {
                    for &v in &vec_axes {
                        for w in &warp_axes {
                            out.push(OpConfig {
                                in_spec: i.clone(),
                                in2_spec: None,
                                out_spec: o.clone(),
                                vector_axis: Some(v),
                                warp_axis: *w,
                                algo: 0,
                                math: MathMode::TensorCore,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_dataflow::{build, EncoderDims};

    fn bert() -> (xform_dataflow::Graph, Vec<(String, NodeId)>) {
        let e = build::encoder(&EncoderDims::bert_large());
        let ids = e
            .graph
            .ops()
            .into_iter()
            .map(|id| (e.graph.op(id).unwrap().name.clone(), id))
            .collect();
        (e.graph, ids)
    }

    fn find(ids: &[(String, NodeId)], name: &str) -> NodeId {
        ids.iter().find(|(n, _)| n == name).unwrap().1
    }

    #[test]
    fn natural_config_prices_every_encoder_op() {
        let (g, ids) = bert();
        for (name, id) in &ids {
            let cfg = OpConfig::natural(&g, *id).unwrap();
            let cost = op_cost(&DeviceSpec::v100(), &g, *id, &cfg)
                .unwrap_or_else(|e| panic!("pricing `{name}` failed: {e}"));
            assert!(cost.time_us.is_finite() && cost.time_us > 0.0);
        }
    }

    #[test]
    fn linear_layer_near_table3_time() {
        let (g, ids) = bert();
        let lin = find(&ids, "Linear 1");
        let mut best = f64::INFINITY;
        for cfg in config_space(&g, lin).unwrap() {
            if let Ok(c) = op_cost(&DeviceSpec::v100(), &g, lin, &cfg) {
                best = best.min(c.time_us);
            }
        }
        // Table III: 402-451 µs for this GEMM.
        assert!(best > 250.0 && best < 550.0, "Linear 1 best {best} µs");
    }

    #[test]
    fn softmax_sweep_shows_layout_sensitivity() {
        let (g, ids) = bert();
        let sm = find(&ids, "Scaled softmax");
        let mut best = f64::INFINITY;
        let mut worst: f64 = 0.0;
        for cfg in config_space(&g, sm).unwrap() {
            if let Ok(c) = op_cost(&DeviceSpec::v100(), &g, sm, &cfg) {
                best = best.min(c.time_us);
                worst = worst.max(c.time_us);
            }
        }
        assert!(worst / best > 8.0, "spread only {}", worst / best);
        assert!(best > 50.0 && best < 600.0, "softmax best {best}");
    }

    #[test]
    fn config_space_sizes_are_sane() {
        let (g, ids) = bert();
        // rank-4 contraction: 24·24·24·8·2 configs
        let qkt = find(&ids, "QKT");
        assert_eq!(config_space(&g, qkt).unwrap().len(), 24 * 24 * 24 * 8 * 2);
        // dropout (no reduction): 24 in × 24 out... input rank 4 (hbjk)
        let d = find(&ids, "Dropout att");
        let n = config_space(&g, d).unwrap().len();
        assert_eq!(n, 24 * 24 * 4);
    }

    #[test]
    fn invalid_layout_rejected() {
        let (g, ids) = bert();
        let sm = find(&ids, "Scaled softmax");
        let mut cfg = OpConfig::natural(&g, sm).unwrap();
        cfg.in_spec = "zzzz".into();
        assert!(op_cost(&DeviceSpec::v100(), &g, sm, &cfg).is_err());
    }
}
