//! Execution models of the baseline frameworks the paper compares against
//! (Sec. III-D, Tables IV & V): PyTorch, TensorFlow+XLA, DeepSpeed, and
//! cuDNN's experimental multi-head-attention path.
//!
//! Each framework is modelled as a *policy* for executing a dataflow graph:
//! how aggressively kernels are tuned, how much per-kernel dispatch
//! overhead the framework adds, and which graph (fused or unfused) it runs.
//! The caller supplies the graph — e.g. the unfused encoder graph for
//! PyTorch, an element-wise-fused graph for XLA — mirroring what each
//! framework's compiler achieves, while the policy captures layout/tuning
//! quality. Calibration targets are the paper's measured tables; constants
//! are documented next to their targets.

use xform_dataflow::{EncoderDims, Graph, NodeId, OpClass};
use xform_tensor::Result;

use crate::contraction::{heuristic_algorithm, GemmShape, KernelCost};
use crate::device::DeviceSpec;
use crate::mue::{mue, Mue};
use crate::opmodel::{config_space, op_cost, OpConfig};

/// How thoroughly a framework tunes its kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningLevel {
    /// Exhaustive sweep over the configuration space (the paper's recipe).
    Exhaustive,
    /// Library heuristics: natural layouts, heuristic algorithm choice.
    Heuristic,
    /// Fixed default configuration, no tuning.
    Fixed,
}

/// An execution policy modelling one framework.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkPolicy {
    /// Framework name for reports.
    pub name: String,
    /// Per-operator dispatch overhead in µs (framework bookkeeping on top
    /// of the kernel launch, which the device model already charges).
    pub per_op_overhead_us: f64,
    /// How contractions are tuned.
    pub contraction_tuning: TuningLevel,
    /// How normalization/element-wise kernels are tuned.
    pub kernel_tuning: TuningLevel,
    /// Throughput multiplier (≤ 1) for statistical-normalization kernels
    /// (softmax/layer-norm family). PyTorch's generic reductions run far
    /// below streaming bandwidth (Table III: softmax at 1.3% peak).
    pub normalization_quality: f64,
    /// Throughput multiplier (≤ 1) for element-wise kernels, which even
    /// eager frameworks execute near streaming bandwidth.
    pub elementwise_quality: f64,
    /// Throughput multiplier (≤ 1) for contraction kernels, capturing
    /// suboptimal layout choices feeding cuBLAS.
    pub contraction_quality: f64,
}

impl FrameworkPolicy {
    /// PyTorch 1.5 (Table V: 3.45 / 5.69 ms). Eager per-op dispatch, good
    /// cuBLAS layouts (PyTorch's layouts "enable faster tensor
    /// contractions", Sec. VI-C) but generic unfused element-wise kernels.
    pub fn pytorch() -> Self {
        FrameworkPolicy {
            name: "PyTorch".into(),
            per_op_overhead_us: 5.0,
            contraction_tuning: TuningLevel::Heuristic,
            kernel_tuning: TuningLevel::Fixed,
            normalization_quality: 0.50,
            elementwise_quality: 0.92,
            contraction_quality: 1.0,
        }
    }

    /// TensorFlow 2.1 + XLA (Table V: 3.2 / 5.2 ms). Fuses element-wise
    /// chains (run it on a fused graph) but "uses subpar data layouts for
    /// tensor contractions" and misses the algebraic QKV fusion.
    pub fn tf_xla() -> Self {
        FrameworkPolicy {
            name: "TF+XLA".into(),
            per_op_overhead_us: 3.0,
            contraction_tuning: TuningLevel::Heuristic,
            kernel_tuning: TuningLevel::Fixed,
            normalization_quality: 0.80,
            elementwise_quality: 0.90,
            contraction_quality: 0.90,
        }
    }

    /// DeepSpeed (Table V: 2.8 / 4.8 ms): manually fused and tuned kernels
    /// for BERT; run it on a fused graph.
    pub fn deepspeed() -> Self {
        FrameworkPolicy {
            name: "DeepSpeed".into(),
            per_op_overhead_us: 2.0,
            contraction_tuning: TuningLevel::Heuristic,
            kernel_tuning: TuningLevel::Heuristic,
            normalization_quality: 0.92,
            elementwise_quality: 0.97,
            contraction_quality: 0.99,
        }
    }

    /// The paper's implementation (run on the fused graph with the
    /// recipe-selected configurations; `xform-core` normally drives this
    /// with per-op tuned configs instead of this generic policy).
    pub fn ours() -> Self {
        FrameworkPolicy {
            name: "Ours".into(),
            per_op_overhead_us: 1.0,
            contraction_tuning: TuningLevel::Exhaustive,
            kernel_tuning: TuningLevel::Exhaustive,
            normalization_quality: 1.0,
            elementwise_quality: 1.0,
            contraction_quality: 1.0,
        }
    }
}

/// Timing of one operator under a policy.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Operator id.
    pub op: NodeId,
    /// Operator name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Modelled kernel cost.
    pub cost: KernelCost,
    /// MUE analysis.
    pub mue: Mue,
    /// Dispatch overhead charged on top of the kernel.
    pub overhead_us: f64,
}

/// A full execution profile of a graph under a policy.
#[derive(Debug, Clone)]
pub struct ExecutionProfile {
    /// Framework name.
    pub framework: String,
    /// Per-operator rows in execution order.
    pub rows: Vec<OpProfile>,
    /// Total time in µs (kernels + overheads).
    pub total_us: f64,
}

impl ExecutionProfile {
    /// Total µs spent in operators of one class.
    pub fn class_time_us(&self, class: OpClass) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.cost.time_us + r.overhead_us)
            .sum()
    }

    /// Time of one named operator (kernel only), if present.
    pub fn op_time_us(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.cost.time_us)
    }
}

/// Chooses a configuration for one op under a tuning level.
fn choose_config(
    graph: &Graph,
    device: &DeviceSpec,
    op: NodeId,
    tuning: TuningLevel,
) -> Result<(OpConfig, KernelCost)> {
    let natural = OpConfig::natural(graph, op)?;
    match tuning {
        TuningLevel::Fixed => {
            let cost = op_cost(device, graph, op, &natural)?;
            Ok((natural, cost))
        }
        TuningLevel::Heuristic => {
            // Natural layouts; for contractions, the library's heuristic
            // algorithm instead of the default id.
            let mut cfg = natural;
            if let Some(node) = graph.op(op) {
                if let xform_dataflow::OpKind::Einsum(spec) = &node.kind {
                    let inputs = graph.inputs_of(op);
                    if inputs.len() >= 2 {
                        let a = &graph.data(inputs[0]).expect("data").shape;
                        let b = &graph.data(inputs[1]).expect("data").shape;
                        if let Ok(s) = spec.gemm_sizes(a, b) {
                            cfg.algo = heuristic_algorithm(GemmShape {
                                batch: s.batch,
                                m: s.m,
                                n: s.n,
                                k: s.k,
                            })
                            .id;
                        }
                    }
                }
            }
            let cost = op_cost(device, graph, op, &cfg)?;
            Ok((cfg, cost))
        }
        TuningLevel::Exhaustive => {
            let mut best: Option<(OpConfig, KernelCost)> = None;
            for cfg in config_space(graph, op)? {
                if let Ok(cost) = op_cost(device, graph, op, &cfg) {
                    if best
                        .as_ref()
                        .map(|(_, b)| cost.time_us < b.time_us)
                        .unwrap_or(true)
                    {
                        best = Some((cfg, cost));
                    }
                }
            }
            best.ok_or_else(|| {
                xform_tensor::TensorError::Unsupported("empty configuration space".into())
            })
        }
    }
}

/// Executes a graph under a framework policy, producing per-op timings.
///
/// # Errors
///
/// Returns an error if any operator cannot be priced.
///
/// # Examples
///
/// ```
/// use xform_dataflow::{build, EncoderDims};
/// use xform_gpusim::framework::{execute, FrameworkPolicy};
/// use xform_gpusim::DeviceSpec;
/// let g = build::encoder(&EncoderDims::bert_large()).graph;
/// let profile = execute(&g, &DeviceSpec::v100(), &FrameworkPolicy::pytorch()).unwrap();
/// // Table V ballpark: ~10 ms for one layer, fwd+bwd
/// assert!(profile.total_us > 5_000.0 && profile.total_us < 20_000.0);
/// ```
pub fn execute(
    graph: &Graph,
    device: &DeviceSpec,
    policy: &FrameworkPolicy,
) -> Result<ExecutionProfile> {
    let mut rows = Vec::new();
    let mut total = 0.0f64;
    for op in graph.ops() {
        let node = graph.op(op).expect("live op");
        let class = node.kind.class();
        let tuning = match class {
            OpClass::TensorContraction => policy.contraction_tuning,
            _ => policy.kernel_tuning,
        };
        let (_, mut cost) = choose_config(graph, device, op, tuning)?;
        let quality = match class {
            OpClass::TensorContraction => policy.contraction_quality,
            OpClass::StatisticalNormalization => policy.normalization_quality,
            OpClass::Elementwise => policy.elementwise_quality,
        };
        // Quality scales the kernel body, not the launch overhead.
        let body = (cost.time_us - device.kernel_launch_us).max(0.0);
        cost.time_us = device.kernel_launch_us + body / quality;
        cost.bandwidth_frac *= quality;
        let m = mue(graph, op, &cost);
        total += cost.time_us + policy.per_op_overhead_us;
        rows.push(OpProfile {
            op,
            name: node.name.clone(),
            class,
            cost,
            mue: m,
            overhead_us: policy.per_op_overhead_us,
        });
    }
    Ok(ExecutionProfile {
        framework: policy.name.clone(),
        rows,
        total_us: total,
    })
}

/// Models cuDNN's experimental `cudnnMultiHeadAttnForward` path (Table IV:
/// 131 ms forward, 652 ms backward — orders of magnitude slower). Profiling
/// in the paper shows the implementation "launches very large numbers of
/// softmax kernels, which dominate the runtime"; the model charges one
/// kernel launch per (head, sequence-block) softmax slice plus the
/// underlying GEMM work.
pub fn cudnn_mha_time_ms(device: &DeviceSpec, dims: &EncoderDims) -> (f64, f64) {
    // One softmax kernel per head, per sample, per 8-row block of the
    // attention matrix, plus assorted setup kernels.
    let softmax_launches = (dims.h * dims.b * dims.j.div_ceil(8)) as f64;
    // Each tiny kernel costs launch overhead plus a poorly-utilized sweep
    // of its 8×K slice (uncoalesced: ~5% of peak bandwidth).
    let slice_bytes = (8 * dims.k * device.word_bytes) as f64;
    let per_kernel_us = device.kernel_launch_us + device.stream_time_us(slice_bytes, 0.05);
    let gemm_us = 1200.0; // projections + score/output GEMMs, decently tuned
    let fwd_ms = (softmax_launches * per_kernel_us + gemm_us) / 1000.0;
    // Backward re-runs the storm for softmax dX and the dropout mask, and
    // adds recomputation: measured ratio is ≈5× forward.
    let bwd_ms = fwd_ms * 5.0;
    (fwd_ms, bwd_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_dataflow::build;

    #[test]
    fn pytorch_encoder_total_near_table5() {
        // Table V: PyTorch forward+backward = 9.14 ms (3.45 + 5.69).
        let e = build::encoder(&EncoderDims::bert_large());
        let p = execute(&e.graph, &DeviceSpec::v100(), &FrameworkPolicy::pytorch()).unwrap();
        let ms = p.total_us / 1000.0;
        assert!(ms > 6.0 && ms < 13.0, "PyTorch encoder fwd+bwd {ms} ms");
    }

    #[test]
    fn class_runtime_shares_match_table1_shape() {
        // Table I: contractions 61% of runtime, normalization 25.5%,
        // element-wise 13.5% — despite the >99.8% flop share.
        let e = build::encoder(&EncoderDims::bert_large());
        let p = execute(&e.graph, &DeviceSpec::v100(), &FrameworkPolicy::pytorch()).unwrap();
        let tc = p.class_time_us(OpClass::TensorContraction);
        let sn = p.class_time_us(OpClass::StatisticalNormalization);
        let ew = p.class_time_us(OpClass::Elementwise);
        let total = tc + sn + ew;
        let tc_pct = 100.0 * tc / total;
        let nc_pct = 100.0 * (sn + ew) / total;
        assert!(
            tc_pct > 45.0 && tc_pct < 75.0,
            "contraction runtime {tc_pct}%"
        );
        assert!(nc_pct > 25.0, "non-contraction runtime {nc_pct}%");
    }

    #[test]
    fn deepspeed_policy_beats_pytorch() {
        let e = build::encoder(&EncoderDims::bert_large());
        let d = DeviceSpec::v100();
        let pt = execute(&e.graph, &d, &FrameworkPolicy::pytorch()).unwrap();
        let ds = execute(&e.graph, &d, &FrameworkPolicy::deepspeed()).unwrap();
        assert!(ds.total_us < pt.total_us);
    }

    #[test]
    fn cudnn_mha_is_orders_of_magnitude_slower() {
        let (fwd, bwd) = cudnn_mha_time_ms(&DeviceSpec::v100(), &EncoderDims::bert_large());
        // Table IV: 131 / 652 ms vs ~1-3 ms for everyone else.
        assert!(fwd > 30.0, "cuDNN fwd {fwd} ms");
        assert!(bwd > 4.0 * fwd);
        assert!(fwd < 500.0);
    }

    #[test]
    fn op_profile_lookup() {
        let e = build::encoder(&EncoderDims::bert_large());
        let p = execute(&e.graph, &DeviceSpec::v100(), &FrameworkPolicy::pytorch()).unwrap();
        assert!(p.op_time_us("Linear 1").unwrap() > 100.0);
        assert!(p.op_time_us("nonexistent").is_none());
        assert_eq!(p.rows.len(), e.graph.ops().len());
    }
}
