//! Memory usage efficiency (MUE), Sec. III-C.
//!
//! `MUE = Q/D · B/B̂ · 100`: the fraction of moved bytes that were
//! unavoidable (`Q` is the I/O lower bound, `D` the bytes actually moved)
//! times the fraction of peak bandwidth achieved while moving them. A
//! kernel with both a perfect implementation and perfect streaming scores
//! 100. The paper uses MUE alongside flop/s to decide whether an operator
//! is memory- or compute-bound and where optimization attention should go.

use xform_dataflow::{Graph, NodeId};

use crate::contraction::KernelCost;

/// MUE analysis of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mue {
    /// The metric value in `[0, 100]`.
    pub value: f64,
    /// I/O lower bound in words (from the dataflow graph).
    pub q_words: f64,
    /// Words the implementation actually moved.
    pub d_words: f64,
    /// Achieved fraction of peak bandwidth.
    pub bandwidth_frac: f64,
}

/// Computes MUE for an operator given its modelled execution cost.
///
/// `Q` is the operator's memlet volume in the graph (its unavoidable
/// traffic); `D` and the bandwidth fraction come from the performance
/// model.
///
/// # Examples
///
/// ```
/// use xform_dataflow::{build, EncoderDims};
/// use xform_gpusim::mue::mue;
/// use xform_gpusim::opmodel::{op_cost, OpConfig};
/// use xform_gpusim::DeviceSpec;
/// let e = build::encoder(&EncoderDims::bert_large());
/// let op = e.graph.op_by_name("Residual 1").unwrap();
/// let cfg = OpConfig::natural(&e.graph, op).unwrap();
/// let cost = op_cost(&DeviceSpec::v100(), &e.graph, op, &cfg).unwrap();
/// let m = mue(&e.graph, op, &cost);
/// assert!(m.value > 0.0 && m.value <= 100.0);
/// ```
pub fn mue(graph: &Graph, op: NodeId, cost: &KernelCost) -> Mue {
    let q = graph.io_words(op) as f64;
    let d = cost.moved_words.max(q);
    let value = (q / d * cost.bandwidth_frac * 100.0).clamp(0.0, 100.0);
    Mue {
        value,
        q_words: q,
        d_words: d,
        bandwidth_frac: cost.bandwidth_frac,
    }
}

/// The paper's bound classification: a kernel is memory-bound if its MUE
/// exceeds its achieved percentage of compute peak, compute-bound
/// otherwise (Sec. IV-B).
pub fn is_memory_bound(mue_value: f64, pct_of_compute_peak: f64) -> bool {
    mue_value > pct_of_compute_peak
}

/// Accumulates per-kernel MUE terms into a plan-level figure.
///
/// Plan-level MUE follows the same formula as the per-kernel metric:
/// `Q/D · B/B̂ · 100`, where `Q` and `D` sum over every kernel and `B/B̂`
/// is the *D-weighted* mean bandwidth fraction (slow movers of many words
/// drag the plan down more than slow movers of few). Pure data movement
/// with no lower bound — explicit relayouts a schedule inserts — is added
/// via [`MueAccum::add_movement`]: it grows `D` without growing `Q`, which
/// is exactly how avoidable transposes depress a plan's MUE.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MueAccum {
    q_words: f64,
    d_words: f64,
    weighted_bw: f64,
}

impl MueAccum {
    /// Folds in one kernel: its I/O lower bound and its modelled cost.
    pub fn add_kernel(&mut self, q_words: f64, cost: &KernelCost) {
        let d = cost.moved_words.max(q_words);
        self.q_words += q_words;
        self.d_words += d;
        self.weighted_bw += d * cost.bandwidth_frac;
    }

    /// Folds in pure (avoidable) data movement, e.g. an explicit relayout:
    /// `words` join `D` at the given bandwidth fraction, `Q` is unchanged.
    pub fn add_movement(&mut self, words: f64, bandwidth_frac: f64) {
        self.d_words += words;
        self.weighted_bw += words * bandwidth_frac;
    }

    /// Words of unavoidable traffic accumulated so far.
    pub fn q_words(&self) -> f64 {
        self.q_words
    }

    /// Words of modelled traffic accumulated so far.
    pub fn d_words(&self) -> f64 {
        self.d_words
    }

    /// The aggregate plan-level MUE.
    pub fn total(&self) -> Mue {
        let d = self.d_words.max(self.q_words);
        let bw = if d > 0.0 { self.weighted_bw / d } else { 0.0 };
        let value = if d > 0.0 {
            (self.q_words / d * bw * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        Mue {
            value,
            q_words: self.q_words,
            d_words: d,
            bandwidth_frac: bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::{best_algo_cost, GemmLayout, GemmShape, MathMode};
    use crate::device::DeviceSpec;
    use crate::kernel::{kernel_cost, KernelDesc, TensorAccess};
    use crate::opmodel::{op_cost, OpConfig};
    use xform_dataflow::{build, EncoderDims};

    #[test]
    fn mue_bounded_and_consistent() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        for op in g.ops() {
            let cfg = OpConfig::natural(g, op).unwrap();
            let cost = op_cost(&d, g, op, &cfg).unwrap();
            let m = mue(g, op, &cost);
            assert!((0.0..=100.0).contains(&m.value));
            assert!(m.d_words >= m.q_words);
        }
    }

    #[test]
    fn fused_elementwise_kernels_have_high_mue() {
        // A perfectly vectorized element-wise kernel moves only Q and
        // streams well: MUE should be high (paper's AIB reaches 78).
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        let op = g.op_by_name("Residual 1").unwrap();
        let desc = KernelDesc {
            flop: 4 << 20,
            accesses: vec![
                TensorAccess {
                    words: g.input_words(op),
                    is_input: true,
                    vectorized: true,
                    coalesced: false,
                },
                TensorAccess {
                    words: g.output_words(op),
                    is_input: false,
                    vectorized: true,
                    coalesced: false,
                },
            ],
            has_reduction: false,
            warp_matches_reduce: true,
            reduce_contiguous: true,
            two_pass: false,
            config_key: 1,
        };
        let cost = kernel_cost(&d, &desc);
        let m = mue(g, op, &cost);
        assert!(m.value > 60.0, "MUE {}", m.value);
    }

    #[test]
    fn compute_bound_gemm_has_low_mue_and_high_peak() {
        // Sec. IV-B: contraction MUE consistently under 50% is fine because
        // those kernels are compute-bound.
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        let op = g.op_by_name("Linear 1").unwrap();
        let shape = GemmShape {
            batch: 1,
            m: 4096,
            n: 4096,
            k: 1024,
        };
        let (_, cost) = best_algo_cost(&d, shape, GemmLayout::ideal(), MathMode::TensorCore);
        let m = mue(g, op, &cost);
        let pct = cost.pct_of_peak(d.tensor_core_tflops);
        assert!(m.value < 50.0, "GEMM MUE {}", m.value);
        assert!(!is_memory_bound(m.value, pct));
    }

    #[test]
    fn memory_bound_classification() {
        assert!(is_memory_bound(70.0, 1.0));
        assert!(!is_memory_bound(10.0, 55.0));
    }

    #[test]
    fn accumulator_matches_single_kernel_and_penalizes_relayouts() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        let op = g.op_by_name("Residual 1").unwrap();
        let cfg = OpConfig::natural(g, op).unwrap();
        let cost = op_cost(&d, g, op, &cfg).unwrap();
        let single = mue(g, op, &cost);
        let mut acc = MueAccum::default();
        acc.add_kernel(g.io_words(op) as f64, &cost);
        let agg = acc.total();
        assert!((agg.value - single.value).abs() < 1e-9);
        assert!((agg.q_words - single.q_words).abs() < 1e-9);
        // avoidable movement lowers the aggregate
        acc.add_movement(single.q_words, 0.55);
        assert!(acc.total().value < agg.value);
        assert!(acc.d_words() > agg.d_words);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = MueAccum::default().total();
        assert_eq!(m.value, 0.0);
        assert_eq!(m.q_words, 0.0);
    }
}
