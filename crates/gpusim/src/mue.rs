//! Memory usage efficiency (MUE), Sec. III-C.
//!
//! `MUE = Q/D · B/B̂ · 100`: the fraction of moved bytes that were
//! unavoidable (`Q` is the I/O lower bound, `D` the bytes actually moved)
//! times the fraction of peak bandwidth achieved while moving them. A
//! kernel with both a perfect implementation and perfect streaming scores
//! 100. The paper uses MUE alongside flop/s to decide whether an operator
//! is memory- or compute-bound and where optimization attention should go.

use xform_dataflow::{Graph, NodeId};

use crate::contraction::KernelCost;

/// MUE analysis of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mue {
    /// The metric value in `[0, 100]`.
    pub value: f64,
    /// I/O lower bound in words (from the dataflow graph).
    pub q_words: f64,
    /// Words the implementation actually moved.
    pub d_words: f64,
    /// Achieved fraction of peak bandwidth.
    pub bandwidth_frac: f64,
}

/// Computes MUE for an operator given its modelled execution cost.
///
/// `Q` is the operator's memlet volume in the graph (its unavoidable
/// traffic); `D` and the bandwidth fraction come from the performance
/// model.
///
/// # Examples
///
/// ```
/// use xform_dataflow::{build, EncoderDims};
/// use xform_gpusim::mue::mue;
/// use xform_gpusim::opmodel::{op_cost, OpConfig};
/// use xform_gpusim::DeviceSpec;
/// let e = build::encoder(&EncoderDims::bert_large());
/// let op = e.graph.op_by_name("Residual 1").unwrap();
/// let cfg = OpConfig::natural(&e.graph, op).unwrap();
/// let cost = op_cost(&DeviceSpec::v100(), &e.graph, op, &cfg).unwrap();
/// let m = mue(&e.graph, op, &cost);
/// assert!(m.value > 0.0 && m.value <= 100.0);
/// ```
pub fn mue(graph: &Graph, op: NodeId, cost: &KernelCost) -> Mue {
    let q = graph.io_words(op) as f64;
    let d = cost.moved_words.max(q);
    let value = (q / d * cost.bandwidth_frac * 100.0).clamp(0.0, 100.0);
    Mue {
        value,
        q_words: q,
        d_words: d,
        bandwidth_frac: cost.bandwidth_frac,
    }
}

/// The paper's bound classification: a kernel is memory-bound if its MUE
/// exceeds its achieved percentage of compute peak, compute-bound
/// otherwise (Sec. IV-B).
pub fn is_memory_bound(mue_value: f64, pct_of_compute_peak: f64) -> bool {
    mue_value > pct_of_compute_peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contraction::{best_algo_cost, GemmLayout, GemmShape, MathMode};
    use crate::device::DeviceSpec;
    use crate::kernel::{kernel_cost, KernelDesc, TensorAccess};
    use crate::opmodel::{op_cost, OpConfig};
    use xform_dataflow::{build, EncoderDims};

    #[test]
    fn mue_bounded_and_consistent() {
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        for op in g.ops() {
            let cfg = OpConfig::natural(g, op).unwrap();
            let cost = op_cost(&d, g, op, &cfg).unwrap();
            let m = mue(g, op, &cost);
            assert!((0.0..=100.0).contains(&m.value));
            assert!(m.d_words >= m.q_words);
        }
    }

    #[test]
    fn fused_elementwise_kernels_have_high_mue() {
        // A perfectly vectorized element-wise kernel moves only Q and
        // streams well: MUE should be high (paper's AIB reaches 78).
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        let op = g.op_by_name("Residual 1").unwrap();
        let desc = KernelDesc {
            flop: 4 << 20,
            accesses: vec![
                TensorAccess {
                    words: g.input_words(op),
                    is_input: true,
                    vectorized: true,
                    coalesced: false,
                },
                TensorAccess {
                    words: g.output_words(op),
                    is_input: false,
                    vectorized: true,
                    coalesced: false,
                },
            ],
            has_reduction: false,
            warp_matches_reduce: true,
            reduce_contiguous: true,
            two_pass: false,
            config_key: 1,
        };
        let cost = kernel_cost(&d, &desc);
        let m = mue(g, op, &cost);
        assert!(m.value > 60.0, "MUE {}", m.value);
    }

    #[test]
    fn compute_bound_gemm_has_low_mue_and_high_peak() {
        // Sec. IV-B: contraction MUE consistently under 50% is fine because
        // those kernels are compute-bound.
        let e = build::encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let d = DeviceSpec::v100();
        let op = g.op_by_name("Linear 1").unwrap();
        let shape = GemmShape {
            batch: 1,
            m: 4096,
            n: 4096,
            k: 1024,
        };
        let (_, cost) = best_algo_cost(&d, shape, GemmLayout::ideal(), MathMode::TensorCore);
        let m = mue(g, op, &cost);
        let pct = cost.pct_of_peak(d.tensor_core_tflops);
        assert!(m.value < 50.0, "GEMM MUE {}", m.value);
        assert!(!is_memory_bound(m.value, pct));
    }

    #[test]
    fn memory_bound_classification() {
        assert!(is_memory_bound(70.0, 1.0));
        assert!(!is_memory_bound(10.0, 55.0));
    }
}
