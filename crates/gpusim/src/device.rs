//! GPU device specifications for the analytical performance model.

/// Specification of the modelled accelerator.
///
/// Defaults model the NVIDIA V100 used by the paper (Sec. III-D): 16 GB
/// HBM2 at ~900 GB/s, 125 Tflop/s tensor-core peak, 31.4 Tflop/s FP16
/// (non-tensor-core) peak, 80 SMs. Mixed-precision words are 2 bytes.
///
/// # Examples
///
/// ```
/// use xform_gpusim::DeviceSpec;
/// let d = DeviceSpec::v100();
/// assert_eq!(d.word_bytes, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name for reports.
    pub name: String,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// Tensor-core peak throughput in Tflop/s (FP16 inputs, FP32
    /// accumulate).
    pub tensor_core_tflops: f64,
    /// Half-precision FPU peak in Tflop/s.
    pub fp16_tflops: f64,
    /// Single-precision peak in Tflop/s.
    pub fp32_tflops: f64,
    /// Number of streaming multiprocessors (for wave quantization).
    pub sms: usize,
    /// Fixed cost of launching one kernel, in µs.
    pub kernel_launch_us: f64,
    /// Bytes per stored word (2 for FP16 mixed precision).
    pub word_bytes: usize,
    /// Fraction of peak DRAM bandwidth achievable by a perfectly coalesced
    /// streaming kernel (DRAM efficiency ceiling).
    pub stream_efficiency: f64,
    /// Fraction of tensor-core peak achievable by a well-tuned large GEMM
    /// (instruction mix, epilogue, and scheduling overheads).
    pub gemm_efficiency: f64,
    /// Per-SM unified L1/shared-memory capacity in KiB. Per-SM (not
    /// aggregate) because L1 is private: a tile working set either fits
    /// one SM's L1 or it spills, regardless of how many SMs run.
    pub l1_kib_per_sm: u32,
    /// Device-wide L2 capacity in KiB — the last level backing DRAM, so
    /// the capacity that decides whether a re-reference reaches the DRAM
    /// interface.
    pub l2_kib: u32,
    /// DRAM-interface fetch granularity in bytes (the 32 B sector of a
    /// 128 B line on Volta/Ampere): a strided access pays at least this
    /// many bytes per touched sector.
    pub cache_line_bytes: u32,
}

impl DeviceSpec {
    /// The paper's evaluation platform: one V100-SXM2-16GB of Lassen.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-SXM2-16GB".to_string(),
            dram_bandwidth_gbs: 900.0,
            tensor_core_tflops: 125.0,
            fp16_tflops: 31.4,
            fp32_tflops: 15.7,
            sms: 80,
            kernel_launch_us: 4.0,
            word_bytes: 2,
            stream_efficiency: 0.88,
            gemm_efficiency: 0.70,
            l1_kib_per_sm: 128,
            l2_kib: 6144,
            cache_line_bytes: 32,
        }
    }

    /// An NVIDIA A100-SXM4-40GB: the generation after the paper's testbed
    /// (Sec. VIII-B discusses the trend). ~1555 GB/s HBM2e, 312 Tflop/s
    /// FP16 tensor cores, 108 SMs. Running the recipe on this spec shows
    /// how the memory-bound share *grows* as compute outpaces bandwidth —
    /// the paper's core argument about hardware trends.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-SXM4-40GB".to_string(),
            dram_bandwidth_gbs: 1555.0,
            tensor_core_tflops: 312.0,
            fp16_tflops: 78.0,
            fp32_tflops: 19.5,
            sms: 108,
            kernel_launch_us: 3.5,
            word_bytes: 2,
            stream_efficiency: 0.88,
            gemm_efficiency: 0.65,
            l1_kib_per_sm: 192,
            l2_kib: 40960,
            cache_line_bytes: 32,
        }
    }

    /// Time in µs to stream `bytes` at a `fraction` of peak bandwidth.
    pub fn stream_time_us(&self, bytes: f64, fraction: f64) -> f64 {
        debug_assert!(fraction > 0.0);
        bytes / (self.dram_bandwidth_gbs * 1e9 * fraction) * 1e6
    }

    /// Time in µs to execute `flop` at a `fraction` of a peak given in
    /// Tflop/s.
    pub fn compute_time_us(&self, flop: f64, peak_tflops: f64, fraction: f64) -> f64 {
        debug_assert!(fraction > 0.0);
        flop / (peak_tflops * 1e12 * fraction) * 1e6
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::v100()
    }
}

/// Deterministic pseudo-random perturbation in `[1-amp, 1+amp]`, keyed by a
/// configuration hash. Stands in for the irreducible measurement-to-
/// measurement spread between kernel variants without making the simulator
/// nondeterministic.
pub fn config_noise(key: u64, amp: f64) -> f64 {
    // splitmix64
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

/// Hashes a string and integers into a noise key (FNV-1a).
pub fn noise_key(parts: &[&str], ints: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for &i in ints {
        for b in i.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_streaming_time() {
        let d = DeviceSpec::v100();
        // 900 GB at full bandwidth takes 1 s = 1e6 µs
        let t = d.stream_time_us(900e9, 1.0);
        assert!((t - 1e6).abs() < 1.0);
    }

    #[test]
    fn v100_compute_time() {
        let d = DeviceSpec::v100();
        // 125 Tflop at TC peak = 1 s
        let t = d.compute_time_us(125e12, d.tensor_core_tflops, 1.0);
        assert!((t - 1e6).abs() < 1.0);
    }

    #[test]
    fn a100_outpaces_v100_in_compute_more_than_bandwidth() {
        let v = DeviceSpec::v100();
        let a = DeviceSpec::a100();
        let compute_ratio = a.tensor_core_tflops / v.tensor_core_tflops;
        let bw_ratio = a.dram_bandwidth_gbs / v.dram_bandwidth_gbs;
        // the imbalance that makes data movement ever more dominant
        assert!(compute_ratio > bw_ratio);
        assert!(compute_ratio > 2.0 && bw_ratio > 1.5);
    }

    #[test]
    fn cache_capacity_grows_faster_than_bandwidth() {
        let v = DeviceSpec::v100();
        let a = DeviceSpec::a100();
        // A100's L2 grew ~6.7× against ~1.7× bandwidth: on-chip reuse is
        // the lever vendors actually scale, which is why a cache-corrected
        // MUE diverges ever further from the flat count.
        let l2_ratio = a.l2_kib as f64 / v.l2_kib as f64;
        let bw_ratio = a.dram_bandwidth_gbs / v.dram_bandwidth_gbs;
        assert!(l2_ratio > bw_ratio);
        assert_eq!(v.cache_line_bytes, 32);
        assert!(v.l1_kib_per_sm >= 64);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let a = config_noise(42, 0.1);
        let b = config_noise(42, 0.1);
        assert_eq!(a, b);
        for key in 0..1000u64 {
            let n = config_noise(key, 0.08);
            assert!((0.92..=1.08).contains(&n), "noise {n} out of range");
        }
    }

    #[test]
    fn noise_varies_by_key() {
        let xs: Vec<f64> = (0..100).map(|k| config_noise(k, 0.1)).collect();
        let distinct = xs.iter().filter(|&&x| (x - xs[0]).abs() > 1e-12).count();
        assert!(distinct > 90);
    }

    #[test]
    fn noise_key_separates_inputs() {
        assert_ne!(noise_key(&["a"], &[1]), noise_key(&["a"], &[2]));
        assert_ne!(noise_key(&["a", "b"], &[]), noise_key(&["ab"], &[]));
    }
}
