//! Analytical model of element-wise and statistical-normalization kernels
//! (the fused CUDA kernels of Sec. IV-A).
//!
//! These kernels are memory-bound: their time is dominated by
//! `bytes / (peak bandwidth × achieved fraction)`. The achieved fraction is
//! where the data-layout experiments of Sec. V-B bite, and the model
//! reproduces the paper's observations:
//!
//! * vectorized (8-wide FP16) access requires the vectorization axis to be
//!   the tensor's contiguous axis with size divisible by 8 — the largest
//!   single lever;
//! * non-vectorized but thread-contiguous access is a few times slower;
//! * uncoalesced access (threads striding) wastes most of each DRAM
//!   transaction — the source of Fig. 5's long tails;
//! * a warp-reduction axis different from the operator's reduction axis
//!   forces shared-memory transposes;
//! * vectorizing too many tensors at once exhausts registers (the BRD
//!   observation in Sec. V-B);
//! * reduction-first kernels make two passes over their input
//!   (Sec. IV-A's two-loop implementation), moving extra bytes.

use crate::contraction::KernelCost;
use crate::device::{config_noise, DeviceSpec};

/// How one tensor is accessed by a kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorAccess {
    /// Words touched in one pass.
    pub words: u64,
    /// Whether the tensor is read (`true`) or written.
    pub is_input: bool,
    /// Contiguous axis coincides with the vectorization axis and its size
    /// is a multiple of the vector width.
    pub vectorized: bool,
    /// Contiguous axis coincides with the thread/vector axis (coalesced),
    /// but 8-wide vector loads are not possible.
    pub coalesced: bool,
}

impl TensorAccess {
    fn efficiency(&self) -> f64 {
        if self.vectorized {
            1.0
        } else if self.coalesced {
            0.35
        } else {
            // Uncoalesced: a 2-byte word per 32-byte DRAM sector, plus the
            // row-activation thrash of large strides — the source of the
            // paper's orders-of-magnitude Fig. 5 tails.
            0.02
        }
    }
}

/// A fully configured element-wise / normalization kernel, ready to cost.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Flop performed (small; kept for completeness and MUE bookkeeping).
    pub flop: u64,
    /// Per-tensor access descriptors.
    pub accesses: Vec<TensorAccess>,
    /// Whether the operator reduces over an axis.
    pub has_reduction: bool,
    /// Whether the warp-reduction axis matches the operator's reduction
    /// axis (joining them saves registers and shuffles; Sec. V-B).
    pub warp_matches_reduce: bool,
    /// Whether the reduced axis is contiguous in the primary input, making
    /// the sequential part of the reduction a streaming read.
    pub reduce_contiguous: bool,
    /// Whether the kernel runs reduce-then-map as two loops over the input.
    pub two_pass: bool,
    /// Deterministic key for configuration noise.
    pub config_key: u64,
}

/// Models one kernel execution.
pub fn kernel_cost(device: &DeviceSpec, desc: &KernelDesc) -> KernelCost {
    let word_bytes = device.word_bytes as f64;
    let mut moved_words = 0.0f64;
    let mut weighted_inv_eff = 0.0f64;
    let mut vectorized_count = 0usize;
    let mut first_input = true;
    for a in &desc.accesses {
        // Reduce-then-map kernels re-read their primary input on the second
        // loop; the remaining operands stay cached in shared memory across
        // both loops (the reduce lane fits on-chip), so only the primary
        // stream pays twice.
        let passes = if desc.two_pass && a.is_input && first_input {
            2.0
        } else {
            1.0
        };
        if a.is_input {
            first_input = false;
        }
        let w = a.words as f64 * passes;
        moved_words += w;
        weighted_inv_eff += w / a.efficiency();
        if a.vectorized {
            vectorized_count += 1;
        }
    }
    let mut eff = moved_words / weighted_inv_eff;

    if desc.has_reduction {
        if !desc.warp_matches_reduce {
            eff *= 0.5; // shared-memory transpose + extra shuffles
        }
        if !desc.reduce_contiguous {
            eff *= 0.55; // strided sequential reduction
        }
    }
    // Register pressure: each 8-wide vectorized tensor holds 8 values in
    // registers; beyond two tensors, occupancy drops.
    if vectorized_count > 2 {
        eff *= 0.8f64.powi(vectorized_count as i32 - 2);
    }
    let noise = config_noise(desc.config_key, 0.07);
    eff = (eff * device.stream_efficiency * noise).clamp(0.003, device.stream_efficiency);

    let bytes = moved_words * word_bytes;
    let mem_us = device.stream_time_us(bytes, eff);
    // FP16 FPU side (normalization arithmetic); almost never the bottleneck.
    let compute_us = device.compute_time_us(desc.flop as f64, device.fp16_tflops, 0.5);
    KernelCost {
        time_us: device.kernel_launch_us + mem_us.max(compute_us),
        moved_words,
        bandwidth_frac: eff,
        flop: desc.flop as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(words: u64, is_input: bool, vectorized: bool, coalesced: bool) -> TensorAccess {
        TensorAccess {
            words,
            is_input,
            vectorized,
            coalesced,
        }
    }

    fn base_desc() -> KernelDesc {
        KernelDesc {
            flop: 4 * 33_554_432,
            accesses: vec![
                access(33_554_432, true, true, false),
                access(33_554_432, false, true, false),
                access(33_554_432, false, true, false),
            ],
            has_reduction: true,
            warp_matches_reduce: true,
            reduce_contiguous: true,
            two_pass: true,
            config_key: 7,
        }
    }

    #[test]
    fn sm_like_kernel_lands_near_paper_time() {
        // SM at BERT-large scale: paper measures 433 µs (Table III).
        let cost = kernel_cost(&DeviceSpec::v100(), &base_desc());
        assert!(
            cost.time_us > 250.0 && cost.time_us < 700.0,
            "SM-like kernel {} µs",
            cost.time_us
        );
    }

    #[test]
    fn two_pass_moves_extra_primary_input_bytes() {
        let mut d = base_desc();
        let two = kernel_cost(&DeviceSpec::v100(), &d);
        d.two_pass = false;
        let one = kernel_cost(&DeviceSpec::v100(), &d);
        // exactly one extra pass over the primary input
        let delta = two.moved_words - one.moved_words;
        assert!((delta - d.accesses[0].words as f64).abs() < 1.0);
        assert!(two.time_us > one.time_us);
    }

    #[test]
    fn vectorization_is_the_largest_lever() {
        let mut d = base_desc();
        d.has_reduction = false;
        d.two_pass = false;
        let fast = kernel_cost(&DeviceSpec::v100(), &d);
        for a in &mut d.accesses {
            a.vectorized = false;
            a.coalesced = true;
        }
        let coalesced = kernel_cost(&DeviceSpec::v100(), &d);
        for a in &mut d.accesses {
            a.coalesced = false;
        }
        let strided = kernel_cost(&DeviceSpec::v100(), &d);
        assert!(coalesced.time_us > 1.5 * fast.time_us);
        assert!(strided.time_us > 5.0 * fast.time_us);
    }

    #[test]
    fn worst_config_is_an_order_of_magnitude_slower() {
        // Fig. 5: worst layouts are 10-200× worse than the best.
        let mut d = base_desc();
        let best = kernel_cost(&DeviceSpec::v100(), &d);
        for a in &mut d.accesses {
            a.vectorized = false;
            a.coalesced = false;
        }
        d.warp_matches_reduce = false;
        d.reduce_contiguous = false;
        let worst = kernel_cost(&DeviceSpec::v100(), &d);
        let ratio = worst.time_us / best.time_us;
        assert!(ratio > 10.0, "tail ratio only {ratio}");
    }

    #[test]
    fn register_pressure_penalizes_over_vectorization() {
        // 4 small tensors + 1 dominant: vectorizing all of them should not
        // beat vectorizing the dominant ones only (Sec. V-B's BRD case).
        let mk = |nvec: usize| {
            let mut accesses = vec![access(1 << 24, true, true, false)];
            for i in 0..3 {
                accesses.push(access(1 << 18, false, i < nvec - 1, true));
            }
            KernelDesc {
                flop: 0,
                accesses,
                has_reduction: false,
                warp_matches_reduce: true,
                reduce_contiguous: true,
                two_pass: false,
                config_key: 11,
            }
        };
        let two = kernel_cost(&DeviceSpec::v100(), &mk(2));
        let four = kernel_cost(&DeviceSpec::v100(), &mk(4));
        assert!(
            four.time_us > two.time_us,
            "four {} two {}",
            four.time_us,
            two.time_us
        );
    }

    #[test]
    fn mismatched_warp_axis_costs() {
        let mut d = base_desc();
        let good = kernel_cost(&DeviceSpec::v100(), &d);
        d.warp_matches_reduce = false;
        let bad = kernel_cost(&DeviceSpec::v100(), &d);
        assert!(bad.time_us > 1.5 * good.time_us);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let d = KernelDesc {
            flop: 0,
            accesses: vec![
                access(1024, true, true, false),
                access(1024, false, true, false),
            ],
            has_reduction: false,
            warp_matches_reduce: true,
            reduce_contiguous: true,
            two_pass: false,
            config_key: 3,
        };
        let c = kernel_cost(&DeviceSpec::v100(), &d);
        assert!(c.time_us >= DeviceSpec::v100().kernel_launch_us);
        assert!(c.time_us < 2.0 * DeviceSpec::v100().kernel_launch_us);
    }
}
