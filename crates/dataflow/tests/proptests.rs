//! Property-based tests of dataflow-graph invariants: fusion never
//! increases data movement or changes total flop, and the encoder builder
//! produces well-formed graphs across valid dimension choices.

use proptest::prelude::*;

use xform_dataflow::{analysis, build, flops, DataRole, EncoderDims, Graph, OpKind};
use xform_tensor::Shape;

/// Arbitrary valid encoder dimensions (`i = h·p` must hold).
fn arb_dims() -> impl Strategy<Value = EncoderDims> {
    (1usize..3, 2usize..6, 1usize..3, 2usize..5, 2usize..7).prop_map(|(b, j, h, p, u)| {
        EncoderDims {
            b,
            j,
            k: j,
            h,
            p,
            i: h * p,
            u,
        }
    })
}

/// A random element-wise chain graph: input → op₁ → … → opₙ → output.
fn arb_chain() -> impl Strategy<Value = (Graph, Vec<xform_dataflow::NodeId>)> {
    (
        1usize..6,
        2usize..6,
        proptest::collection::vec(0usize..4, 2..6),
    )
        .prop_map(|(n, m, kinds)| {
            let mut g = Graph::new();
            let shape = Shape::new([('a', n), ('b', m)]).unwrap();
            let mut prev = g.add_data("in", shape.clone(), DataRole::Input);
            let mut ops = Vec::new();
            let count = kinds.len();
            for (idx, kind_id) in kinds.into_iter().enumerate() {
                let kind = match kind_id {
                    0 => OpKind::Relu,
                    1 => OpKind::Dropout,
                    2 => OpKind::Scale,
                    _ => OpKind::Residual,
                };
                let role = if idx == count - 1 {
                    DataRole::Output
                } else {
                    DataRole::Activation
                };
                let out = g.add_data(format!("t{idx}"), shape.clone(), role);
                ops.push(g.add_op(format!("op{idx}"), kind, &[prev], &[out]));
                prev = out;
            }
            (g, ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fusion_preserves_flop_and_reduces_movement((mut g, ops) in arb_chain()) {
        let flop_before = flops::total_flop(&g);
        let io_before = g.total_io_words();
        let fused = g.fuse(&ops, "F").unwrap();
        prop_assert_eq!(flops::total_flop(&g), flop_before);
        prop_assert!(g.total_io_words() < io_before);
        prop_assert_eq!(g.ops().len(), 1);
        // external endpoints survive
        prop_assert!(g.data_by_name("in").is_some());
        prop_assert!(!g.inputs_of(fused).is_empty());
        prop_assert!(!g.outputs_of(fused).is_empty());
    }

    #[test]
    fn encoder_graph_well_formed(dims in arb_dims()) {
        let enc = build::encoder(&dims);
        let g = &enc.graph;
        prop_assert_eq!(g.ops().len(), 50);
        // every operator moves data and has non-negative flop
        for op in g.ops() {
            prop_assert!(g.io_words(op) > 0);
            prop_assert!(flops::op_flop(g, op).is_ok());
        }
        // class shares sum to 100%
        let shares = analysis::class_shares(g);
        let total: f64 = shares.iter().map(|s| s.flop_pct).sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
        // contractions dominate flop for any non-trivial size
        prop_assert!(shares[0].flop_pct > 50.0);
    }

    #[test]
    fn encoder_topo_order_respects_dependencies(dims in arb_dims()) {
        let enc = build::encoder(&dims);
        let g = &enc.graph;
        let order = g.topo_ops();
        prop_assert_eq!(order.len(), g.ops().len());
        for (pos, &op) in order.iter().enumerate() {
            for input in g.inputs_of(op) {
                for producer in g.producers_of(input) {
                    let ppos = order.iter().position(|&o| o == producer).unwrap();
                    prop_assert!(ppos < pos, "producer after consumer");
                }
            }
        }
    }

    #[test]
    fn forward_never_reads_gradients(dims in arb_dims()) {
        let enc = build::encoder(&dims);
        let g = &enc.graph;
        let backward: Vec<_> = g.reachable_from(enc.dy);
        for op in g.ops() {
            if backward.contains(&op) {
                continue;
            }
            for d in g.inputs_of(op) {
                let role = g.data(d).unwrap().role;
                prop_assert!(role != DataRole::Gradient, "forward op reads a gradient");
            }
        }
    }

    #[test]
    fn io_words_scale_with_batch(b in 1usize..5) {
        // doubling the batch doubles every activation memlet
        let d1 = EncoderDims { b, j: 4, k: 4, h: 2, p: 3, i: 6, u: 8 };
        let d2 = EncoderDims { b: 2 * b, ..d1 };
        let g1 = build::encoder(&d1).graph;
        let g2 = build::encoder(&d2).graph;
        let io1 = g1.total_io_words() as f64;
        let io2 = g2.total_io_words() as f64;
        // weights don't scale, so the ratio is slightly under 2
        prop_assert!(io2 / io1 > 1.5 && io2 / io1 <= 2.0, "ratio {}", io2 / io1);
    }
}
