//! Graph-level analyses: per-operator annotations (Fig. 1b / Fig. 2),
//! operator-class shares (Table I), and I/O lower bounds for MUE.

use crate::flops::op_flop;
use crate::graph::{Graph, NodeId};
use crate::op::OpClass;

/// One operator's static annotation, as drawn on the paper's dataflow
/// figures: flop, words moved, and their ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct OpAnnotation {
    /// Operator id within the graph.
    pub op: NodeId,
    /// Operator name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Flop performed.
    pub flop: u64,
    /// Words read.
    pub input_words: u64,
    /// Words written.
    pub output_words: u64,
}

impl OpAnnotation {
    /// Total words moved.
    pub fn io_words(&self) -> u64 {
        self.input_words + self.output_words
    }

    /// The flop-per-word ratio annotated on Fig. 2. Ratios below ~1 mean
    /// the operator is memory-bound on any modern GPU.
    pub fn flop_per_word(&self) -> f64 {
        self.flop as f64 / self.io_words() as f64
    }
}

/// Annotates every operator in execution order.
pub fn annotate(graph: &Graph) -> Vec<OpAnnotation> {
    graph
        .ops()
        .into_iter()
        .map(|op| {
            let node = graph.op(op).expect("live op");
            OpAnnotation {
                op,
                name: node.name.clone(),
                class: node.kind.class(),
                flop: op_flop(graph, op).unwrap_or(0),
                input_words: graph.input_words(op),
                output_words: graph.output_words(op),
            }
        })
        .collect()
}

/// Flop and I/O totals for one operator class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassShare {
    /// The class.
    pub class: OpClass,
    /// Total flop in the class.
    pub flop: u64,
    /// Percentage of the graph's flop.
    pub flop_pct: f64,
    /// Total words moved by the class.
    pub io_words: u64,
    /// Percentage of the graph's data movement.
    pub io_pct: f64,
}

/// Per-class flop and I/O shares (the static half of Table I; the runtime
/// column needs a performance model).
pub fn class_shares(graph: &Graph) -> Vec<ClassShare> {
    let anns = annotate(graph);
    let total_flop: u64 = anns.iter().map(|a| a.flop).sum();
    let total_io: u64 = anns.iter().map(|a| a.io_words()).sum();
    [
        OpClass::TensorContraction,
        OpClass::StatisticalNormalization,
        OpClass::Elementwise,
    ]
    .into_iter()
    .map(|class| {
        let flop: u64 = anns
            .iter()
            .filter(|a| a.class == class)
            .map(|a| a.flop)
            .sum();
        let io: u64 = anns
            .iter()
            .filter(|a| a.class == class)
            .map(|a| a.io_words())
            .sum();
        ClassShare {
            class,
            flop,
            flop_pct: 100.0 * flop as f64 / total_flop.max(1) as f64,
            io_words: io,
            io_pct: 100.0 * io as f64 / total_io.max(1) as f64,
        }
    })
    .collect()
}

/// The I/O lower bound `Q` (in words) for one operator: the unique external
/// data it must read plus what it must write, i.e. the volume that would
/// remain even with a perfect implementation. For an operator node this is
/// its in+out memlet volume — interim traffic inside fused operators has
/// already been removed from the graph by fusion.
pub fn io_lower_bound(graph: &Graph, op: NodeId) -> u64 {
    graph.io_words(op)
}

/// Data-movement reduction between two versions of a graph (e.g. unfused vs
/// fused), as a percentage of the baseline movement — the paper's headline
/// "up to 22.91%" figure.
pub fn movement_reduction_pct(baseline: &Graph, optimized: &Graph) -> f64 {
    let b = baseline.total_io_words() as f64;
    let o = optimized.total_io_words() as f64;
    100.0 * (b - o) / b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::encoder;
    use crate::dims::EncoderDims;
    use crate::graph::DataRole;
    use crate::op::OpKind;
    use xform_tensor::Shape;

    #[test]
    fn annotations_cover_all_ops() {
        let e = encoder(&EncoderDims::tiny());
        let anns = annotate(&e.graph);
        assert_eq!(anns.len(), e.graph.ops().len());
        for a in &anns {
            assert!(a.io_words() > 0, "{} moved no data", a.name);
        }
    }

    #[test]
    fn flop_per_word_identifies_memory_bound_ops() {
        let e = encoder(&EncoderDims::bert_large());
        let anns = annotate(&e.graph);
        let by_name = |n: &str| anns.iter().find(|a| a.name == n).unwrap();
        // Fig. 2: tensor contractions have flop/word in the hundreds;
        // element-wise operators are below 1.
        assert!(by_name("Linear 1").flop_per_word() > 100.0);
        assert!(by_name("Dropout 1").flop_per_word() < 1.0);
        assert!(by_name("Residual 1").flop_per_word() < 1.0);
        // layernorm ≈ 7/3 per Fig. 2's "2.33"
        let ln = by_name("LayerNorm 1").flop_per_word();
        assert!(ln > 1.5 && ln < 4.0, "layernorm flop/word {ln}");
    }

    #[test]
    fn class_shares_sum_to_hundred() {
        let e = encoder(&EncoderDims::bert_large());
        let shares = class_shares(&e.graph);
        let flop_total: f64 = shares.iter().map(|s| s.flop_pct).sum();
        let io_total: f64 = shares.iter().map(|s| s.io_pct).sum();
        assert!((flop_total - 100.0).abs() < 1e-6);
        assert!((io_total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn movement_reduction_measures_fusion() {
        let mut g = Graph::new();
        let s = Shape::new([('x', 100)]).unwrap();
        let a = g.add_data("a", s.clone(), DataRole::Input);
        let b = g.add_data("b", s.clone(), DataRole::Activation);
        let c = g.add_data("c", s, DataRole::Output);
        let o1 = g.add_op("o1", OpKind::Relu, &[a], &[b]);
        let o2 = g.add_op("o2", OpKind::Dropout, &[b], &[c]);
        let baseline = g.clone();
        g.fuse(&[o1, o2], "F").unwrap();
        let red = movement_reduction_pct(&baseline, &g);
        // 400 words before, 200 after
        assert!((red - 50.0).abs() < 1e-6);
    }
}
