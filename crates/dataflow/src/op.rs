//! Operator kinds and the paper's three-way operator classification.

use std::fmt;

use xform_tensor::einsum::EinsumSpec;
use xform_tensor::Axis;

/// The paper's operator classes (Sec. III-B, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// △ — (batched) matrix-matrix multiplications: linear layers and the
    /// MHA contractions. >99% of flop, ~61% of runtime.
    TensorContraction,
    /// ⬜ — softmax, layer normalization and other reduce-then-map
    /// operators. ~0.17% of flop, ~25% of runtime.
    StatisticalNormalization,
    /// ○ — biases, dropout, activations, residuals. ~0.03% of flop,
    /// ~13% of runtime.
    Elementwise,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::TensorContraction => "tensor contraction",
            OpClass::StatisticalNormalization => "statistical normalization",
            OpClass::Elementwise => "element-wise",
        };
        f.write_str(s)
    }
}

impl OpClass {
    /// The marker glyph used in the paper's tables.
    pub fn glyph(self) -> char {
        match self {
            OpClass::TensorContraction => '△',
            OpClass::StatisticalNormalization => '⬜',
            OpClass::Elementwise => '○',
        }
    }
}

/// A single logical operator in the dataflow graph.
///
/// Each variant corresponds to one operator node of the paper's Fig. 2
/// (forward or backward). A [`OpKind::Fused`] node is produced by the
/// fusion pass, which replaces a chain of element-wise / normalization
/// nodes with one kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A tensor contraction described by an einsum.
    Einsum(EinsumSpec),
    /// Broadcast bias add over the named axes.
    Bias {
        /// Axes of the bias tensor.
        axes: Vec<Axis>,
    },
    /// Bias gradient: reduction over every non-bias axis.
    BiasGrad {
        /// Axes of the bias tensor.
        axes: Vec<Axis>,
    },
    /// Multiplication by a scalar (the attention `1/√P` scaling).
    Scale,
    /// Softmax along an axis.
    Softmax {
        /// The normalized axis.
        axis: Axis,
    },
    /// Softmax backward along an axis.
    SoftmaxGrad {
        /// The normalized axis.
        axis: Axis,
    },
    /// Layer normalization along an axis (with learned scale and shift).
    LayerNorm {
        /// The normalized axis.
        axis: Axis,
    },
    /// Layer-norm input gradient.
    LayerNormGradX {
        /// The normalized axis.
        axis: Axis,
    },
    /// Layer-norm weight gradients (`dgamma`, `dbeta`).
    LayerNormGradW {
        /// The normalized axis.
        axis: Axis,
    },
    /// Dropout (mask generation + application).
    Dropout,
    /// Dropout backward (mask application).
    DropoutGrad,
    /// ReLU activation.
    Relu,
    /// ReLU backward.
    ReluGrad,
    /// Residual connection (element-wise add).
    Residual,
    /// A fused kernel produced by the fusion pass. Flop is recorded at
    /// fusion time (the sum over constituents); I/O is implied by the
    /// rewired edges, which is exactly how fusion saves data movement.
    Fused {
        /// Kernel name (e.g. `"SM"`, `"BDRLN"`).
        name: String,
        /// Names of the constituent operators, for reporting.
        parts: Vec<String>,
        /// Total flop of the constituents.
        flop: u64,
        /// The dominant class among constituents.
        class: OpClass,
        /// Reduction axis, if any constituent reduces (drives the
        /// performance model's warp-reduction handling).
        reduce_axis: Option<Axis>,
    },
    /// A GEMM-epilogue mega-kernel: a tensor contraction fused with its
    /// downstream element-wise / normalization chain, applied per output
    /// tile so the contraction's output is never materialized. Produced
    /// by the epilogue fusion pass ([`crate::Graph::fuse_epilogue`]); the
    /// eliminated intermediate's memlets are gone from the graph, which
    /// is exactly the data-movement saving.
    ContractionEpilogue {
        /// The contraction the kernel computes.
        spec: EinsumSpec,
        /// Names of the constituent operators (contraction first, then
        /// the epilogue chain), for reporting.
        parts: Vec<String>,
        /// Total flop of the constituents.
        flop: u64,
        /// Reduction axis of the epilogue chain (e.g. softmax), if any.
        reduce_axis: Option<Axis>,
    },
}

impl OpKind {
    /// The operator class per the paper's taxonomy.
    pub fn class(&self) -> OpClass {
        match self {
            OpKind::Einsum(_) => OpClass::TensorContraction,
            OpKind::Softmax { .. }
            | OpKind::SoftmaxGrad { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::LayerNormGradX { .. }
            | OpKind::LayerNormGradW { .. }
            | OpKind::BiasGrad { .. } => OpClass::StatisticalNormalization,
            OpKind::Bias { .. }
            | OpKind::Scale
            | OpKind::Dropout
            | OpKind::DropoutGrad
            | OpKind::Relu
            | OpKind::ReluGrad
            | OpKind::Residual => OpClass::Elementwise,
            OpKind::Fused { class, .. } => *class,
            OpKind::ContractionEpilogue { .. } => OpClass::TensorContraction,
        }
    }

    /// Whether this operator contains a reduction dimension (relevant for
    /// the fusion-compatibility rules of Sec. IV).
    pub fn has_reduction(&self) -> bool {
        match self {
            OpKind::Einsum(_)
            | OpKind::Softmax { .. }
            | OpKind::SoftmaxGrad { .. }
            | OpKind::LayerNorm { .. }
            | OpKind::LayerNormGradX { .. }
            | OpKind::LayerNormGradW { .. }
            | OpKind::BiasGrad { .. } => true,
            OpKind::Fused { reduce_axis, .. } => reduce_axis.is_some(),
            OpKind::ContractionEpilogue { .. } => true,
            _ => false,
        }
    }

    /// The axis reduced by a normalization (or fused) operator, if any.
    /// Einsum reduction dimensions are described by the spec instead.
    pub fn reduce_axis(&self) -> Option<Axis> {
        match self {
            OpKind::Softmax { axis }
            | OpKind::SoftmaxGrad { axis }
            | OpKind::LayerNorm { axis }
            | OpKind::LayerNormGradX { axis }
            | OpKind::LayerNormGradW { axis } => Some(*axis),
            OpKind::Fused { reduce_axis, .. } => *reduce_axis,
            OpKind::ContractionEpilogue { reduce_axis, .. } => *reduce_axis,
            _ => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Einsum(spec) => write!(f, "einsum[{spec}]"),
            OpKind::Bias { axes } => {
                write!(f, "bias[")?;
                for a in axes {
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            OpKind::BiasGrad { axes } => {
                write!(f, "bias-dW[")?;
                for a in axes {
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            OpKind::Scale => write!(f, "scale"),
            OpKind::Softmax { axis } => write!(f, "softmax[{axis}]"),
            OpKind::SoftmaxGrad { axis } => write!(f, "softmax-dX[{axis}]"),
            OpKind::LayerNorm { axis } => write!(f, "layernorm[{axis}]"),
            OpKind::LayerNormGradX { axis } => write!(f, "layernorm-dX[{axis}]"),
            OpKind::LayerNormGradW { axis } => write!(f, "layernorm-dW[{axis}]"),
            OpKind::Dropout => write!(f, "dropout"),
            OpKind::DropoutGrad => write!(f, "dropout-dX"),
            OpKind::Relu => write!(f, "relu"),
            OpKind::ReluGrad => write!(f, "relu-dX"),
            OpKind::Residual => write!(f, "residual"),
            OpKind::Fused { name, parts, .. } => {
                write!(f, "{name}{{{}}}", parts.join("+"))
            }
            OpKind::ContractionEpilogue { spec, parts, .. } => {
                write!(f, "gemm-epilogue[{spec}]{{{}}}", parts.join("+"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_taxonomy() {
        let spec: EinsumSpec = "ik,kj->ij".parse().unwrap();
        assert_eq!(OpKind::Einsum(spec).class(), OpClass::TensorContraction);
        assert_eq!(
            OpKind::Softmax { axis: Axis('k') }.class(),
            OpClass::StatisticalNormalization
        );
        assert_eq!(
            OpKind::LayerNormGradW { axis: Axis('i') }.class(),
            OpClass::StatisticalNormalization
        );
        assert_eq!(OpKind::Dropout.class(), OpClass::Elementwise);
        assert_eq!(OpKind::Residual.class(), OpClass::Elementwise);
        assert_eq!(
            OpKind::BiasGrad {
                axes: vec![Axis('i')]
            }
            .class(),
            OpClass::StatisticalNormalization
        );
    }

    #[test]
    fn reductions_flagged() {
        assert!(OpKind::Softmax { axis: Axis('k') }.has_reduction());
        assert!(OpKind::BiasGrad {
            axes: vec![Axis('i')]
        }
        .has_reduction());
        assert!(!OpKind::Bias {
            axes: vec![Axis('i')]
        }
        .has_reduction());
        assert!(!OpKind::Relu.has_reduction());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(OpKind::Scale.to_string(), "scale");
        assert_eq!(
            OpKind::Bias {
                axes: vec![Axis('p'), Axis('h')]
            }
            .to_string(),
            "bias[ph]"
        );
        let fused = OpKind::Fused {
            name: "SM".into(),
            parts: vec!["scale".into(), "softmax".into(), "dropout".into()],
            flop: 42,
            class: OpClass::StatisticalNormalization,
            reduce_axis: Some(Axis('k')),
        };
        assert_eq!(fused.to_string(), "SM{scale+softmax+dropout}");
    }

    #[test]
    fn glyphs_are_distinct() {
        let g = [
            OpClass::TensorContraction.glyph(),
            OpClass::StatisticalNormalization.glyph(),
            OpClass::Elementwise.glyph(),
        ];
        assert_ne!(g[0], g[1]);
        assert_ne!(g[1], g[2]);
    }
}
