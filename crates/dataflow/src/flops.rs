//! Flop accounting per operator.
//!
//! Conventions are calibrated against the paper's Fig. 2 / Table III
//! numbers (they count one flop per scalar add/mul; a fused multiply-add is
//! two flop). Per-element constants:
//!
//! | operator | flop/element | paper cross-check (BERT-large) |
//! |---|---|---|
//! | bias, scale, dropout, residual | 1 | dropout on 4.19M words → 0.004 Gflop ✓ |
//! | ReLU | 0 | listed as "—" in Table III ✓ |
//! | softmax | 5 | scaled softmax (5+1)·33.5M ≈ 0.20G vs 0.188G |
//! | softmax dX | 5 | 0.168G vs 0.156G |
//! | layernorm | 7 | 7·4.19M = 29.3M vs Fig. 2's 29M ✓ |
//! | layernorm dX | 8 | 33.5M vs 0.035G ✓ |
//! | layernorm dW | 4 | 16.8M vs 16M ✓ |
//! | bias dW | 1 | reduction counted as one add per input word ✓ |
//! | einsum | 2·B·M·N·K | exact |

use xform_tensor::{Result, TensorError};

use crate::graph::{Graph, NodeId};
use crate::op::OpKind;

/// Flop per element for softmax forward.
pub const SOFTMAX_FLOP_PER_ELEM: u64 = 5;
/// Flop per element for softmax backward.
pub const SOFTMAX_GRAD_FLOP_PER_ELEM: u64 = 5;
/// Flop per element for layer normalization forward.
pub const LAYERNORM_FLOP_PER_ELEM: u64 = 7;
/// Flop per element for layer normalization input gradient.
pub const LAYERNORM_GRAD_X_FLOP_PER_ELEM: u64 = 8;
/// Flop per element for layer normalization weight gradients.
pub const LAYERNORM_GRAD_W_FLOP_PER_ELEM: u64 = 4;

/// Flop performed by one operator node of `graph`.
///
/// Element-wise and normalization operators are counted per element of
/// their *primary* tensor: the first input for backward/reduction kernels,
/// the first output otherwise. Contractions are exact.
///
/// # Errors
///
/// Returns an error if `op` is not a live operator, an einsum node lacks
/// two inputs, or einsum shapes are inconsistent.
pub fn op_flop(graph: &Graph, op: NodeId) -> Result<u64> {
    let node = graph
        .op(op)
        .ok_or_else(|| TensorError::Unsupported(format!("{op} is not an operator")))?;
    let first_input_elems = || -> Result<u64> {
        let inputs = graph.inputs_of(op);
        let d = inputs
            .first()
            .and_then(|&i| graph.data(i))
            .ok_or_else(|| TensorError::Unsupported(format!("`{}` has no inputs", node.name)))?;
        Ok(d.shape.num_elements() as u64)
    };
    let first_output_elems = || -> Result<u64> {
        let outputs = graph.outputs_of(op);
        let d = outputs
            .first()
            .and_then(|&o| graph.data(o))
            .ok_or_else(|| TensorError::Unsupported(format!("`{}` has no outputs", node.name)))?;
        Ok(d.shape.num_elements() as u64)
    };
    match &node.kind {
        OpKind::Einsum(spec) => {
            let inputs = graph.inputs_of(op);
            if inputs.len() < 2 {
                return Err(TensorError::Unsupported(format!(
                    "einsum `{}` needs two inputs",
                    node.name
                )));
            }
            let a = &graph.data(inputs[0]).expect("data").shape;
            let b = &graph.data(inputs[1]).expect("data").shape;
            spec.flop(a, b)
        }
        OpKind::Bias { .. } | OpKind::Scale | OpKind::Dropout | OpKind::Residual => {
            first_output_elems()
        }
        OpKind::DropoutGrad | OpKind::BiasGrad { .. } => first_input_elems(),
        OpKind::Relu | OpKind::ReluGrad => Ok(0),
        OpKind::Softmax { .. } => Ok(SOFTMAX_FLOP_PER_ELEM * first_output_elems()?),
        OpKind::SoftmaxGrad { .. } => Ok(SOFTMAX_GRAD_FLOP_PER_ELEM * first_input_elems()?),
        OpKind::LayerNorm { .. } => Ok(LAYERNORM_FLOP_PER_ELEM * first_output_elems()?),
        OpKind::LayerNormGradX { .. } => Ok(LAYERNORM_GRAD_X_FLOP_PER_ELEM * first_input_elems()?),
        OpKind::LayerNormGradW { .. } => Ok(LAYERNORM_GRAD_W_FLOP_PER_ELEM * first_input_elems()?),
        OpKind::Fused { flop, .. } | OpKind::ContractionEpilogue { flop, .. } => Ok(*flop),
    }
}

/// Total flop over every operator in the graph.
pub fn total_flop(graph: &Graph) -> u64 {
    graph
        .ops()
        .into_iter()
        .map(|op| op_flop(graph, op).unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DataRole;
    use xform_tensor::{Axis, Shape};

    #[test]
    fn einsum_flop_is_exact() {
        let mut g = Graph::new();
        let a = g.add_data(
            "a",
            Shape::new([('m', 4), ('k', 8)]).unwrap(),
            DataRole::Input,
        );
        let b = g.add_data(
            "b",
            Shape::new([('k', 8), ('n', 2)]).unwrap(),
            DataRole::Input,
        );
        let c = g.add_data(
            "c",
            Shape::new([('m', 4), ('n', 2)]).unwrap(),
            DataRole::Output,
        );
        let op = g.add_op(
            "mm",
            OpKind::Einsum("mk,kn->mn".parse().unwrap()),
            &[a, b],
            &[c],
        );
        assert_eq!(op_flop(&g, op).unwrap(), 2 * 4 * 8 * 2);
    }

    #[test]
    fn elementwise_and_normalization_constants() {
        let mut g = Graph::new();
        let shape = Shape::new([('b', 3), ('i', 10)]).unwrap();
        let x = g.add_data("x", shape.clone(), DataRole::Input);
        let y = g.add_data("y", shape.clone(), DataRole::Activation);
        let z = g.add_data("z", shape.clone(), DataRole::Activation);
        let w = g.add_data("w", shape, DataRole::Output);
        let ln = g.add_op("ln", OpKind::LayerNorm { axis: Axis('i') }, &[x], &[y]);
        let sm = g.add_op("sm", OpKind::Softmax { axis: Axis('i') }, &[y], &[z]);
        let dp = g.add_op("dp", OpKind::Dropout, &[z], &[w]);
        assert_eq!(op_flop(&g, ln).unwrap(), 7 * 30);
        assert_eq!(op_flop(&g, sm).unwrap(), 5 * 30);
        assert_eq!(op_flop(&g, dp).unwrap(), 30);
        assert_eq!(total_flop(&g), 13 * 30);
    }

    #[test]
    fn relu_is_free() {
        let mut g = Graph::new();
        let shape = Shape::new([('x', 5)]).unwrap();
        let a = g.add_data("a", shape.clone(), DataRole::Input);
        let b = g.add_data("b", shape, DataRole::Output);
        let op = g.add_op("r", OpKind::Relu, &[a], &[b]);
        assert_eq!(op_flop(&g, op).unwrap(), 0);
    }

    #[test]
    fn fused_uses_recorded_flop() {
        let mut g = Graph::new();
        let shape = Shape::new([('x', 6)]).unwrap();
        let a = g.add_data("a", shape.clone(), DataRole::Input);
        let b = g.add_data("b", shape.clone(), DataRole::Activation);
        let c = g.add_data("c", shape, DataRole::Output);
        let o1 = g.add_op("s", OpKind::Scale, &[a], &[b]);
        let o2 = g.add_op("d", OpKind::Dropout, &[b], &[c]);
        let before = total_flop(&g);
        let fused = g.fuse(&[o1, o2], "F").unwrap();
        assert_eq!(op_flop(&g, fused).unwrap(), before);
    }

    #[test]
    fn non_op_errors() {
        let mut g = Graph::new();
        let a = g.add_data("a", Shape::new([('x', 2)]).unwrap(), DataRole::Input);
        assert!(op_flop(&g, a).is_err());
    }
}
