//! The dataflow graph: operators, data containers, and memlet edges.
//!
//! A simplified stateful-dataflow-multigraph (SDFG) in the spirit of DaCe
//! (Sec. II-C): data containers and operators are nodes; every edge is a
//! *memlet* carrying the exact number of words moved. Because every edge
//! represents exact data movement, access volumes can be inspected directly
//! — the property the paper's whole recipe rests on.

use std::fmt;

use xform_tensor::{Shape, TensorError};

use crate::op::{OpClass, OpKind};

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Role of a data container, used by analyses and by the fusion pass to
/// decide which containers are interim values that fusion eliminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataRole {
    /// External input to the computation (e.g. the encoder input `X`).
    Input,
    /// Learned parameter.
    Weight,
    /// Intermediate activation. Fusion may eliminate these.
    Activation,
    /// Forward-pass value saved for backpropagation (masks, layer-norm
    /// inputs, softmax outputs). Never eliminated by fusion.
    Saved,
    /// Gradient tensor.
    Gradient,
    /// External output (e.g. the layer output, weight gradients).
    Output,
    /// Persistent cross-call state (e.g. a decoder KV cache). Lives in the
    /// arena slab across plan executions: live-in and live-out of every
    /// plan, never recolored, never produced by a plan step.
    Cache,
}

/// A data-container node.
#[derive(Debug, Clone, PartialEq)]
pub struct DataNode {
    /// Container name (e.g. `"qq"`, `"drop1_mask"`).
    pub name: String,
    /// Logical shape of the container.
    pub shape: Shape,
    /// Role in the computation.
    pub role: DataRole,
}

/// An operator node.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// Operator name, matching the paper's table rows where applicable.
    pub name: String,
    /// What the operator computes.
    pub kind: OpKind,
}

/// A node: either a data container or an operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A data container.
    Data(DataNode),
    /// An operator.
    Op(OpNode),
}

/// A memlet edge. Data→op edges are operator reads; op→data edges are
/// operator writes. `volume_words` is the exact number of words moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Words moved along this edge.
    pub volume_words: u64,
}

/// A dataflow graph for one training step (or a fragment of one).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Option<Node>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a data container.
    pub fn add_data(&mut self, name: impl Into<String>, shape: Shape, role: DataRole) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Node::Data(DataNode {
            name: name.into(),
            shape,
            role,
        })));
        id
    }

    /// Adds an operator reading `inputs` and writing `outputs` (all data
    /// nodes), creating one memlet per connection with the full container
    /// volume.
    ///
    /// # Panics
    ///
    /// Panics if an input or output id does not refer to a data node.
    pub fn add_op(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: &[NodeId],
        outputs: &[NodeId],
    ) -> NodeId {
        let ins: Vec<(NodeId, u64)> = inputs
            .iter()
            .map(|&i| {
                let words = self
                    .data(i)
                    .expect("op input must be a data node")
                    .shape
                    .num_elements() as u64;
                (i, words)
            })
            .collect();
        let outs: Vec<(NodeId, u64)> = outputs
            .iter()
            .map(|&o| {
                let words = self
                    .data(o)
                    .expect("op output must be a data node")
                    .shape
                    .num_elements() as u64;
                (o, words)
            })
            .collect();
        self.add_op_with_volumes(name, kind, &ins, &outs)
    }

    /// Like [`Graph::add_op`] but with explicit memlet volumes, for
    /// operators that access only a slice of a container (e.g. the writers
    /// of the stacked Q/K/V gradient).
    ///
    /// # Panics
    ///
    /// Panics if an id does not refer to a data node.
    pub fn add_op_with_volumes(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        inputs: &[(NodeId, u64)],
        outputs: &[(NodeId, u64)],
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Node::Op(OpNode {
            name: name.into(),
            kind,
        })));
        for &(i, words) in inputs {
            assert!(self.data(i).is_some(), "op input must be a data node");
            self.edges.push(Edge {
                from: i,
                to: id,
                volume_words: words,
            });
        }
        for &(o, words) in outputs {
            assert!(self.data(o).is_some(), "op output must be a data node");
            self.edges.push(Edge {
                from: id,
                to: o,
                volume_words: words,
            });
        }
        id
    }

    /// The node behind an id, if it still exists.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0).and_then(|n| n.as_ref())
    }

    /// The data node behind an id, if it is one.
    pub fn data(&self, id: NodeId) -> Option<&DataNode> {
        match self.node(id) {
            Some(Node::Data(d)) => Some(d),
            _ => None,
        }
    }

    /// The operator node behind an id, if it is one.
    pub fn op(&self, id: NodeId) -> Option<&OpNode> {
        match self.node(id) {
            Some(Node::Op(o)) => Some(o),
            _ => None,
        }
    }

    /// Ids of all live operator nodes, in insertion (execution) order.
    pub fn ops(&self) -> Vec<NodeId> {
        self.ids(|n| matches!(n, Node::Op(_)))
    }

    /// Ids of all live data nodes, in insertion order.
    pub fn data_nodes(&self) -> Vec<NodeId> {
        self.ids(|n| matches!(n, Node::Data(_)))
    }

    fn ids(&self, pred: impl Fn(&Node) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Some(n) if pred(n) => Some(NodeId(i)),
                _ => None,
            })
            .collect()
    }

    /// Looks up an operator by name (first match in insertion order).
    pub fn op_by_name(&self, name: &str) -> Option<NodeId> {
        self.ops()
            .into_iter()
            .find(|&id| self.op(id).map(|o| o.name == name).unwrap_or(false))
    }

    /// Looks up a data node by name (first match in insertion order).
    pub fn data_by_name(&self, name: &str) -> Option<NodeId> {
        self.data_nodes()
            .into_iter()
            .find(|&id| self.data(id).map(|d| d.name == name).unwrap_or(false))
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Data nodes read by an operator, in edge order.
    pub fn inputs_of(&self, op: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.to == op)
            .map(|e| e.from)
            .collect()
    }

    /// Data nodes written by an operator, in edge order.
    pub fn outputs_of(&self, op: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.from == op)
            .map(|e| e.to)
            .collect()
    }

    /// The operator that writes a data node, if any.
    pub fn producer_of(&self, data: NodeId) -> Option<NodeId> {
        self.edges.iter().find(|e| e.to == data).map(|e| e.from)
    }

    /// Operators that read a data node.
    pub fn consumers_of(&self, data: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.from == data)
            .map(|e| e.to)
            .collect()
    }

    /// Words read by an operator (sum of incoming memlet volumes).
    pub fn input_words(&self, op: NodeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.to == op)
            .map(|e| e.volume_words)
            .sum()
    }

    /// Words written by an operator (sum of outgoing memlet volumes).
    pub fn output_words(&self, op: NodeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.from == op)
            .map(|e| e.volume_words)
            .sum()
    }

    /// Total words moved by an operator (inputs + outputs) — the paper's
    /// per-operator I/O measure.
    pub fn io_words(&self, op: NodeId) -> u64 {
        self.input_words(op) + self.output_words(op)
    }

    /// Words `op` reads from one specific container (the exact memlet
    /// volume, summed if several edges connect the pair). Slice readers of
    /// stacked containers move only their slice, not the whole container.
    pub fn read_words(&self, op: NodeId, data: NodeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.from == data && e.to == op)
            .map(|e| e.volume_words)
            .sum()
    }

    /// Words `op` writes into one specific container (the exact memlet
    /// volume, summed if several edges connect the pair).
    pub fn write_words(&self, op: NodeId, data: NodeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.from == op && e.to == data)
            .map(|e| e.volume_words)
            .sum()
    }

    /// Total bytes moved by an operator at the given word width — the
    /// byte-volume figure static audits aggregate per operator class.
    pub fn io_bytes(&self, op: NodeId, word_bytes: usize) -> u64 {
        self.io_words(op) * word_bytes as u64
    }

    /// Replaces a group of operators with one fused operator named `name`.
    ///
    /// External inputs/outputs of the group become the fused operator's
    /// memlets. Interim data nodes — role [`DataRole::Activation`], produced
    /// and consumed exclusively inside the group — are deleted together with
    /// their memlets: this deletion *is* the data-movement saving of fusion.
    /// The fused node records the constituents' summed flop.
    ///
    /// # Errors
    ///
    /// Returns an error if the group is empty, an id is not a live operator,
    /// or a constituent is itself a tensor contraction (the paper never
    /// fuses contractions into element-wise kernels; Sec. IV-C).
    pub fn fuse(&mut self, group: &[NodeId], name: &str) -> Result<NodeId, TensorError> {
        if group.is_empty() {
            return Err(TensorError::Unsupported(
                "cannot fuse an empty group".into(),
            ));
        }
        let mut parts = Vec::new();
        let mut flop_total = 0u64;
        let mut class = OpClass::Elementwise;
        let mut reduce_axis = None;
        for &id in group {
            let op = self
                .op(id)
                .ok_or_else(|| TensorError::Unsupported(format!("{id} is not an operator")))?;
            if op.kind.class() == OpClass::TensorContraction {
                return Err(TensorError::Unsupported(format!(
                    "cannot fuse tensor contraction `{}` into an element-wise kernel",
                    op.name
                )));
            }
            if op.kind.class() == OpClass::StatisticalNormalization {
                class = OpClass::StatisticalNormalization;
            }
            if reduce_axis.is_none() {
                reduce_axis = op.kind.reduce_axis();
            }
            parts.push(op.name.clone());
            flop_total += crate::flops::op_flop(self, id).unwrap_or(0);
        }

        // Classify the group's data connections.
        let in_group = |id: NodeId| group.contains(&id);
        let mut ext_inputs: Vec<NodeId> = Vec::new();
        let mut ext_outputs: Vec<NodeId> = Vec::new();
        let mut interim: Vec<NodeId> = Vec::new();
        for &op_id in group {
            for d in self.inputs_of(op_id) {
                let produced_inside = self.producer_of(d).map(in_group).unwrap_or(false);
                if !produced_inside && !ext_inputs.contains(&d) {
                    ext_inputs.push(d);
                }
            }
            for d in self.outputs_of(op_id) {
                let consumers = self.consumers_of(d);
                let all_inside = !consumers.is_empty() && consumers.iter().all(|&c| in_group(c));
                let role = self.data(d).expect("edge target is data").role;
                let interim_role = role == DataRole::Activation || role == DataRole::Gradient;
                if all_inside && interim_role {
                    if !interim.contains(&d) {
                        interim.push(d);
                    }
                } else if !ext_outputs.contains(&d) {
                    ext_outputs.push(d);
                }
            }
        }

        // Delete the group's ops, their memlets, and interim containers.
        let dead: Vec<NodeId> = group
            .iter()
            .copied()
            .chain(interim.iter().copied())
            .collect();
        self.edges
            .retain(|e| !dead.contains(&e.from) && !dead.contains(&e.to));
        for id in dead {
            self.nodes[id.0] = None;
        }

        let fused = OpKind::Fused {
            name: name.to_string(),
            parts,
            flop: flop_total,
            class,
            reduce_axis,
        };
        Ok(self.add_op(name, fused, &ext_inputs, &ext_outputs))
    }

    /// Replaces a contraction `head` and its sole element-wise consumer
    /// `tail` with one [`OpKind::ContractionEpilogue`] mega-kernel named
    /// `name`. The contraction's output — read only by `tail` — is deleted
    /// together with its memlets: the epilogue applies per output tile, so
    /// that intermediate is never materialized. This is the one sanctioned
    /// exception to [`Graph::fuse`]'s no-contraction rule; the paper stops
    /// at element-wise groups, this goes one step further (CODA/VTC-style
    /// virtual intermediates).
    ///
    /// # Errors
    ///
    /// Returns an error if `head` is not an einsum operator, `tail` is not
    /// a live non-contraction operator, `head` does not write exactly one
    /// container, that container is not an interim activation read
    /// exclusively (and solely) by `tail`, or `tail` reads it other than
    /// as its primary input.
    pub fn fuse_epilogue(
        &mut self,
        head: NodeId,
        tail: NodeId,
        name: &str,
    ) -> Result<NodeId, TensorError> {
        let head_op = self
            .op(head)
            .ok_or_else(|| TensorError::Unsupported(format!("{head} is not an operator")))?;
        let OpKind::Einsum(spec) = head_op.kind.clone() else {
            return Err(TensorError::Unsupported(format!(
                "epilogue head `{}` is not a contraction",
                head_op.name
            )));
        };
        let head_name = head_op.name.clone();
        let tail_op = self
            .op(tail)
            .ok_or_else(|| TensorError::Unsupported(format!("{tail} is not an operator")))?;
        if tail_op.kind.class() == OpClass::TensorContraction {
            return Err(TensorError::Unsupported(format!(
                "epilogue tail `{}` is itself a contraction",
                tail_op.name
            )));
        }
        let tail_name = tail_op.name.clone();
        let tail_parts = match &tail_op.kind {
            OpKind::Fused { parts, .. } => parts.clone(),
            _ => vec![tail_name.clone()],
        };
        let reduce_axis = tail_op.kind.reduce_axis();

        let head_outputs = self.outputs_of(head);
        let [mid] = head_outputs[..] else {
            return Err(TensorError::Unsupported(format!(
                "epilogue head `{head_name}` must write exactly one container"
            )));
        };
        let mid_node = self.data(mid).expect("edge target is data");
        if mid_node.role != DataRole::Activation {
            return Err(TensorError::Unsupported(format!(
                "epilogue intermediate `{}` is not an interim activation",
                mid_node.name
            )));
        }
        if self.consumers_of(mid) != vec![tail] {
            return Err(TensorError::Unsupported(format!(
                "epilogue intermediate `{}` must be read exclusively by `{tail_name}`",
                mid_node.name
            )));
        }
        let tail_inputs = self.inputs_of(tail);
        if tail_inputs.first() != Some(&mid) {
            return Err(TensorError::Unsupported(format!(
                "epilogue tail `{tail_name}` must read the contraction output as its \
                 primary input"
            )));
        }

        let flop = crate::flops::op_flop(self, head).unwrap_or(0)
            + crate::flops::op_flop(self, tail).unwrap_or(0);
        let mut parts = vec![head_name];
        parts.extend(tail_parts);

        // External memlets: the contraction's operands plus the tail's
        // non-intermediate inputs; outputs are the tail's outputs.
        let mut ext_inputs = self.inputs_of(head);
        for d in tail_inputs {
            if d != mid && !ext_inputs.contains(&d) {
                ext_inputs.push(d);
            }
        }
        let ext_outputs = self.outputs_of(tail);

        let dead = [head, tail, mid];
        self.edges
            .retain(|e| !dead.contains(&e.from) && !dead.contains(&e.to));
        for id in dead {
            self.nodes[id.0] = None;
        }

        let kind = OpKind::ContractionEpilogue {
            spec,
            parts,
            flop,
            reduce_axis,
        };
        Ok(self.add_op(name, kind, &ext_inputs, &ext_outputs))
    }

    /// Total words moved across all operators (the graph-level data-movement
    /// figure that fusion reduces by ~22.91% in the paper).
    pub fn total_io_words(&self) -> u64 {
        self.ops().iter().map(|&op| self.io_words(op)).sum()
    }

    /// Operators in a topological order of their data dependencies
    /// (Kahn's algorithm; insertion order breaks ties, so builder emission
    /// order is preserved where dependencies allow).
    pub fn topo_ops(&self) -> Vec<NodeId> {
        let ops = self.ops();
        let mut indeg: Vec<usize> = ops
            .iter()
            .map(|&op| {
                self.inputs_of(op)
                    .into_iter()
                    .flat_map(|d| self.producers_of(d))
                    .filter(|p| ops.contains(p))
                    .count()
            })
            .collect();
        let mut order = Vec::with_capacity(ops.len());
        let mut done = vec![false; ops.len()];
        while order.len() < ops.len() {
            let mut progressed = false;
            for (i, &op) in ops.iter().enumerate() {
                if !done[i] && indeg[i] == 0 {
                    done[i] = true;
                    progressed = true;
                    order.push(op);
                    for d in self.outputs_of(op) {
                        for c in self.consumers_of(d) {
                            if let Some(j) = ops.iter().position(|&o| o == c) {
                                indeg[j] = indeg[j].saturating_sub(1);
                            }
                        }
                    }
                }
            }
            if !progressed {
                // cycle (should not happen for training graphs): emit rest
                for (i, &op) in ops.iter().enumerate() {
                    if !done[i] {
                        order.push(op);
                    }
                }
                break;
            }
        }
        order
    }

    /// All operators writing a data node (stacked containers like the
    /// Q/K/V gradient have several slice writers).
    pub fn producers_of(&self, data: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|e| e.to == data)
            .map(|e| e.from)
            .collect()
    }

    /// Structural validation: every edge connects a data node to an
    /// operator (the graph is bipartite), every operator reads and writes
    /// at least one container, no memlet volume exceeds its container, and
    /// every non-source container has at least one producer. Returns all
    /// violations found (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for e in &self.edges {
            let from_data = self.data(e.from).is_some();
            let to_data = self.data(e.to).is_some();
            let from_op = self.op(e.from).is_some();
            let to_op = self.op(e.to).is_some();
            if !((from_data && to_op) || (from_op && to_data)) {
                problems.push(format!("edge {} -> {} is not data↔op", e.from, e.to));
                continue;
            }
            let container = if from_data { e.from } else { e.to };
            let cap = self
                .data(container)
                .expect("validated")
                .shape
                .num_elements() as u64;
            if e.volume_words > cap {
                problems.push(format!(
                    "edge {} -> {} moves {} words but the container holds {}",
                    e.from, e.to, e.volume_words, cap
                ));
            }
            if e.volume_words == 0 {
                problems.push(format!("edge {} -> {} moves zero words", e.from, e.to));
            }
        }
        for op in self.ops() {
            let name = &self.op(op).expect("live").name;
            if self.inputs_of(op).is_empty() {
                problems.push(format!("operator `{name}` reads nothing"));
            }
            if self.outputs_of(op).is_empty() {
                problems.push(format!("operator `{name}` writes nothing"));
            }
        }
        for d in self.data_nodes() {
            let node = self.data(d).expect("live");
            let produced = !self.producers_of(d).is_empty();
            let consumed = !self.consumers_of(d).is_empty();
            match node.role {
                DataRole::Input | DataRole::Weight => {
                    if produced {
                        problems.push(format!("`{}` ({:?}) has a producer", node.name, node.role));
                    }
                }
                DataRole::Output => {
                    if !produced {
                        problems.push(format!("output `{}` is never produced", node.name));
                    }
                }
                DataRole::Activation => {
                    if !produced {
                        problems.push(format!("`{}` is never produced", node.name));
                    }
                    if !consumed {
                        problems.push(format!("`{}` is never consumed", node.name));
                    }
                }
                DataRole::Saved => {
                    // saved tensors exist *for* a later (possibly absent)
                    // backward graph; production is required, consumption
                    // is not (e.g. a forward-only MHA graph)
                    if !produced {
                        problems.push(format!("`{}` is never produced", node.name));
                    }
                }
                DataRole::Gradient => {
                    // `dy` is the backward seed: consumed but not produced
                    if !consumed && !produced {
                        problems.push(format!("gradient `{}` is disconnected", node.name));
                    }
                }
                DataRole::Cache => {
                    // persistent state is appended to *between* plan runs,
                    // never produced by a plan step; it must feed something
                    if produced {
                        problems.push(format!("cache `{}` has a producer", node.name));
                    }
                    if !consumed {
                        problems.push(format!("cache `{}` is never consumed", node.name));
                    }
                }
            }
        }
        problems
    }

    /// Renders the graph in Graphviz DOT format: operator nodes as boxes
    /// labelled with their class glyph, data containers as ellipses (saved
    /// tensors dashed), memlets as edges annotated with their volume in
    /// Mwords. Feed the output to `dot -Tsvg` to draw Fig. 1/2-style
    /// diagrams.
    pub fn to_dot(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{title}\" {{");
        let _ = writeln!(out, "  rankdir=TB; node [fontsize=10];");
        for id in self.data_nodes() {
            let d = self.data(id).expect("live data");
            let style = match d.role {
                DataRole::Saved => "shape=ellipse, style=dashed",
                DataRole::Weight => "shape=ellipse, style=dotted",
                DataRole::Input | DataRole::Output => "shape=ellipse, style=bold",
                _ => "shape=ellipse",
            };
            let _ = writeln!(out, "  n{} [label=\"{}\", {}];", id.0, d.name, style);
        }
        for id in self.ops() {
            let o = self.op(id).expect("live op");
            let _ = writeln!(
                out,
                "  n{} [label=\"{} {}\", shape=box, style=filled, fillcolor=lightgrey];",
                id.0,
                o.kind.class().glyph(),
                o.name
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:.1}M\"];",
                e.from.0,
                e.to.0,
                e.volume_words as f64 / 1e6
            );
        }
        out.push_str("}\n");
        out
    }

    /// Every node (op or data) reachable downstream of `start` by following
    /// edges forward. Used to split a training graph into forward and
    /// backward halves (everything reachable from `dy` is backward).
    pub fn reachable_from(&self, start: NodeId) -> Vec<NodeId> {
        let mut seen = vec![start];
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            for e in &self.edges {
                if e.from == n && !seen.contains(&e.to) {
                    seen.push(e.to);
                    stack.push(e.to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xform_tensor::Axis;

    fn shape(n: usize) -> Shape {
        Shape::new([('x', n)]).unwrap()
    }

    fn chain_graph() -> (Graph, [NodeId; 3], [NodeId; 4]) {
        // a --op1--> b --op2--> c, with op3 reading c
        let mut g = Graph::new();
        let a = g.add_data("a", shape(10), DataRole::Input);
        let b = g.add_data("b", shape(10), DataRole::Activation);
        let c = g.add_data("c", shape(10), DataRole::Activation);
        let d = g.add_data("d", shape(10), DataRole::Output);
        let op1 = g.add_op("op1", OpKind::Relu, &[a], &[b]);
        let op2 = g.add_op("op2", OpKind::Residual, &[b], &[c]);
        let op3 = g.add_op("op3", OpKind::Dropout, &[c], &[d]);
        (g, [op1, op2, op3], [a, b, c, d])
    }

    #[test]
    fn structure_queries() {
        let (g, [op1, op2, _], [a, b, _, _]) = chain_graph();
        assert_eq!(g.ops().len(), 3);
        assert_eq!(g.data_nodes().len(), 4);
        assert_eq!(g.inputs_of(op1), vec![a]);
        assert_eq!(g.outputs_of(op1), vec![b]);
        assert_eq!(g.producer_of(b), Some(op1));
        assert_eq!(g.consumers_of(b), vec![op2]);
        assert_eq!(g.op_by_name("op2"), Some(op2));
        assert_eq!(g.data_by_name("a"), Some(a));
        assert_eq!(g.io_words(op1), 20);
        assert_eq!(g.read_words(op1, a), 10);
        assert_eq!(g.write_words(op1, b), 10);
        assert_eq!(g.read_words(op1, b), 0);
        assert_eq!(g.io_bytes(op1, 2), 40);
    }

    #[test]
    fn fuse_removes_interim_container() {
        let (mut g, [op1, op2, _], [a, b, c, _]) = chain_graph();
        let before = g.total_io_words();
        let fused = g.fuse(&[op1, op2], "F").unwrap();
        // b was interim: gone. a and c remain external.
        assert!(g.node(b).is_none());
        assert!(g.node(op1).is_none());
        assert_eq!(g.inputs_of(fused), vec![a]);
        assert_eq!(g.outputs_of(fused), vec![c]);
        // io dropped by the two memlets touching b (2 × 10 words)
        assert_eq!(g.total_io_words(), before - 20);
        match &g.op(fused).unwrap().kind {
            OpKind::Fused { parts, .. } => assert_eq!(parts, &["op1", "op2"]),
            other => panic!("expected fused, got {other:?}"),
        }
    }

    #[test]
    fn fuse_keeps_saved_containers() {
        let mut g = Graph::new();
        let a = g.add_data("a", shape(8), DataRole::Input);
        let b = g.add_data("b", shape(8), DataRole::Saved); // e.g. a mask
        let c = g.add_data("c", shape(8), DataRole::Output);
        let op1 = g.add_op("op1", OpKind::Dropout, &[a], &[b]);
        let op2 = g.add_op("op2", OpKind::Relu, &[b], &[c]);
        let fused = g.fuse(&[op1, op2], "F").unwrap();
        // b is Saved: must survive as an output of the fused kernel.
        assert!(g.node(b).is_some());
        assert!(g.outputs_of(fused).contains(&b));
        assert!(g.outputs_of(fused).contains(&c));
    }

    #[test]
    fn fuse_rejects_contractions_and_empty() {
        let mut g = Graph::new();
        let a = g.add_data("a", shape(4), DataRole::Input);
        let b = g.add_data("b", shape(4), DataRole::Input);
        let c = g.add_data("c", shape(4), DataRole::Output);
        let spec = "xy,yz->xz".parse().unwrap();
        let mm = g.add_op("mm", OpKind::Einsum(spec), &[a, b], &[c]);
        assert!(g.fuse(&[], "F").is_err());
        assert!(g.fuse(&[mm], "F").is_err());
        assert!(g.fuse(&[a], "F").is_err()); // not an op
    }

    #[test]
    fn validate_accepts_well_formed_and_flags_broken() {
        let (g, _, _) = chain_graph();
        assert!(g.validate().is_empty(), "{:?}", g.validate());
        // orphan activation
        let mut g2 = g.clone();
        g2.add_data("orphan", shape(4), DataRole::Activation);
        let problems = g2.validate();
        assert!(problems.iter().any(|p| p.contains("orphan")));
    }

    #[test]
    fn to_dot_renders_all_nodes_and_edges() {
        let (g, ops, data) = {
            let (g, o, d) = chain_graph();
            (g, o, d)
        };
        let dot = g.to_dot("test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        for id in ops {
            assert!(dot.contains(&format!("n{}", id.0)));
        }
        for id in data {
            assert!(dot.contains(&format!("n{}", id.0)));
        }
        assert!(dot.contains("op1"));
        assert!(dot.matches(" -> ").count() == g.edges().len());
    }

    #[test]
    fn fused_class_prefers_normalization() {
        let mut g = Graph::new();
        let a = g.add_data("a", shape(8), DataRole::Input);
        let b = g.add_data("b", shape(8), DataRole::Activation);
        let c = g.add_data("c", shape(8), DataRole::Output);
        let op1 = g.add_op("s", OpKind::Softmax { axis: Axis('x') }, &[a], &[b]);
        let op2 = g.add_op("d", OpKind::Dropout, &[b], &[c]);
        let fused = g.fuse(&[op1, op2], "SM").unwrap();
        assert_eq!(
            g.op(fused).unwrap().kind.class(),
            OpClass::StatisticalNormalization
        );
    }
}
