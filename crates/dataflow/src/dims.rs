//! Problem dimensions for the transformer encoder layer.

/// Dimensions of a BERT-style encoder layer, in the paper's notation
/// (Sec. III-D / Fig. 1): `B` batch, `J`/`K` input/output sequence length,
/// `H` heads, `P` per-head projection size (`W = P`), `I` embedding size,
/// `U` feed-forward intermediate size.
///
/// # Examples
///
/// ```
/// use xform_dataflow::EncoderDims;
/// let d = EncoderDims::bert_large();
/// assert_eq!(d.i, d.h * d.p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncoderDims {
    /// Mini-batch size.
    pub b: usize,
    /// Input sequence length (queries).
    pub j: usize,
    /// Output sequence length (keys/values); equals `j` for self-attention.
    pub k: usize,
    /// Number of attention heads.
    pub h: usize,
    /// Per-head projection size (the paper's `P = W`).
    pub p: usize,
    /// Embedding size (`I = P·H` for BERT).
    pub i: usize,
    /// Feed-forward intermediate size.
    pub u: usize,
}

impl EncoderDims {
    /// The paper's default configuration: BERT-large with `B = 8`,
    /// `L = 512` (Sec. III-D).
    pub fn bert_large() -> Self {
        EncoderDims {
            b: 8,
            j: 512,
            k: 512,
            h: 16,
            p: 64,
            i: 1024,
            u: 4096,
        }
    }

    /// The alternative configuration of Sec. VI-C: `B = 96`, `L = 128`.
    pub fn bert_b96() -> Self {
        EncoderDims {
            b: 96,
            j: 128,
            k: 128,
            h: 16,
            p: 64,
            i: 1024,
            u: 4096,
        }
    }

    /// A tiny configuration for CPU-executed tests (valid: `i = h·p`).
    pub fn tiny() -> Self {
        EncoderDims {
            b: 2,
            j: 4,
            k: 4,
            h: 2,
            p: 3,
            i: 6,
            u: 8,
        }
    }

    /// Size bindings for [`xform_tensor::Shape::from_spec`], using the
    /// paper's letters (`w` aliases `p`, `l` aliases `j`).
    pub fn size_table(&self) -> Vec<(char, usize)> {
        vec![
            ('b', self.b),
            ('j', self.j),
            ('k', self.k),
            ('h', self.h),
            ('p', self.p),
            ('w', self.p),
            ('i', self.i),
            ('u', self.u),
        ]
    }

    /// Looks up one dimension by its letter.
    ///
    /// # Panics
    ///
    /// Panics if the letter is not one of `b j k h p w i u`.
    pub fn size(&self, axis: char) -> usize {
        match axis {
            'b' => self.b,
            'j' => self.j,
            'k' => self.k,
            'h' => self.h,
            'p' | 'w' => self.p,
            'i' => self.i,
            'u' => self.u,
            other => panic!("unknown encoder dimension letter `{other}`"),
        }
    }

    /// Number of words in a tensor described by an axis spec like `"phbj"`.
    pub fn words(&self, spec: &str) -> u64 {
        spec.chars().map(|c| self.size(c) as u64).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_matches_paper() {
        let d = EncoderDims::bert_large();
        assert_eq!(d.i, 1024);
        assert_eq!(d.h * d.p, d.i);
        // attention scores: 33.5M words (Table III "Scaled softmax" input)
        assert_eq!(d.words("hbjk"), 33_554_432);
        // activations: 4.19M words
        assert_eq!(d.words("ibj"), 4_194_304);
        // feed-forward intermediate: 16.8M words
        assert_eq!(d.words("bju"), 16_777_216);
    }

    #[test]
    fn b96_matches_section_6c() {
        let d = EncoderDims::bert_b96();
        assert_eq!(d.b, 96);
        assert_eq!(d.j, 128);
    }

    #[test]
    fn tiny_is_consistent() {
        let d = EncoderDims::tiny();
        assert_eq!(d.i, d.h * d.p);
    }

    #[test]
    fn words_multiplies_sizes() {
        let d = EncoderDims::tiny();
        assert_eq!(d.words("bj"), (d.b * d.j) as u64);
        assert_eq!(d.words(""), 1);
    }

    #[test]
    #[should_panic(expected = "unknown encoder dimension")]
    fn size_rejects_unknown_letters() {
        EncoderDims::tiny().size('z');
    }
}
