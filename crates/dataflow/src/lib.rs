//! Dataflow IR and analysis for transformer training steps.
//!
//! This crate is the "Step 1" of the paper's recipe (Sec. III): construct a
//! dataflow graph of the training process and analyze it to identify
//! operator classes, flop, and data-movement volumes.
//!
//! * [`Graph`] — an SDFG-style graph of operators, data containers, and
//!   memlet edges carrying exact word volumes;
//! * [`OpKind`] / [`OpClass`] — the operator taxonomy of Sec. III-B
//!   (tensor contractions △, statistical normalizations ⬜, element-wise ○);
//! * [`build`] — constructors for the MHA graph (Fig. 1) and the full BERT
//!   encoder layer forward+backward (Fig. 2), with every saved activation
//!   and dropout mask modelled;
//! * [`flops`] — flop accounting calibrated against Table III;
//! * [`analysis`] — per-operator annotations, class shares (Table I), and
//!   data-movement comparisons.
//!
//! # Examples
//!
//! ```
//! use xform_dataflow::{build, EncoderDims};
//! let enc = build::encoder(&EncoderDims::bert_large());
//! let shares = xform_dataflow::analysis::class_shares(&enc.graph);
//! // >99.8% of flop is in tensor contractions (Table I)
//! assert!(shares[0].flop_pct > 99.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod build;
mod dims;
pub mod flops;
mod graph;
mod op;

pub use dims::EncoderDims;
pub use graph::{DataNode, DataRole, Edge, Graph, Node, NodeId, OpNode};
pub use op::{OpClass, OpKind};
