//! Builders for the paper's dataflow graphs: multi-head attention (Fig. 1)
//! and the full BERT encoder layer, forward and backward (Fig. 2).
//!
//! The encoder builder produces the *unfused* operator graph — one node per
//! logical operator, named after the corresponding row of Table III — with
//! every saved activation, dropout mask and stacked Q/K/V tensor modelled
//! explicitly, so that per-operator input/output word counts reproduce the
//! paper's accounting. The fusion pass (in `xform-core`) then rewrites this
//! graph into the fused form.

use xform_tensor::{Axis, Shape};

use crate::dims::EncoderDims;
use crate::graph::{DataRole, Graph, NodeId};
use crate::op::OpKind;

fn shape(dims: &EncoderDims, spec: &str) -> Shape {
    Shape::from_spec(spec, &dims.size_table()).expect("valid builder spec")
}

fn stacked_shape(dims: &EncoderDims, tail: &str) -> Shape {
    let mut v = vec![('s', 3 * dims.p)];
    for c in tail.chars() {
        v.push((c, dims.size(c)));
    }
    Shape::new(v).expect("valid stacked spec")
}

fn einsum(spec: &str) -> OpKind {
    OpKind::Einsum(spec.parse().expect("valid builder einsum"))
}

/// Multi-head attention forward pass with general attention (distinct
/// query/key/value inputs), mirroring Fig. 1 of the paper: three input
/// projections with biases, scaled softmax with dropout, and the output
/// projection.
pub fn mha_forward(dims: &EncoderDims) -> Graph {
    let mut g = Graph::new();
    // inputs and weights
    let q = g.add_data("q", shape(dims, "ibj"), DataRole::Input);
    let k = g.add_data("k", shape(dims, "ibk"), DataRole::Input);
    let v = g.add_data("v", shape(dims, "ibk"), DataRole::Input);
    let wq = g.add_data("wq", shape(dims, "phi"), DataRole::Weight);
    let wk = g.add_data("wk", shape(dims, "phi"), DataRole::Weight);
    let wv = g.add_data("wv", shape(dims, "whi"), DataRole::Weight);
    let wo = g.add_data("wo", shape(dims, "whi"), DataRole::Weight);
    let bq = g.add_data("bq", shape(dims, "ph"), DataRole::Weight);
    let bk = g.add_data("bk", shape(dims, "ph"), DataRole::Weight);
    let bv = g.add_data("bv", shape(dims, "wh"), DataRole::Weight);
    let bo = g.add_data("bo", shape(dims, "i"), DataRole::Weight);
    // projections
    let qq_raw = g.add_data("qq_raw", shape(dims, "phbj"), DataRole::Activation);
    let kk_raw = g.add_data("kk_raw", shape(dims, "phbk"), DataRole::Activation);
    let vv_raw = g.add_data("vv_raw", shape(dims, "whbk"), DataRole::Activation);
    g.add_op("Q", einsum("phi,ibj->phbj"), &[wq, q], &[qq_raw]);
    g.add_op("K", einsum("phi,ibk->phbk"), &[wk, k], &[kk_raw]);
    g.add_op("V", einsum("whi,ibk->whbk"), &[wv, v], &[vv_raw]);
    let qq = g.add_data("qq", shape(dims, "phbj"), DataRole::Saved);
    let kk = g.add_data("kk", shape(dims, "phbk"), DataRole::Saved);
    let vv = g.add_data("vv", shape(dims, "whbk"), DataRole::Saved);
    g.add_op(
        "Input bias Q",
        OpKind::Bias {
            axes: vec![Axis('p'), Axis('h')],
        },
        &[qq_raw, bq],
        &[qq],
    );
    g.add_op(
        "Input bias K",
        OpKind::Bias {
            axes: vec![Axis('p'), Axis('h')],
        },
        &[kk_raw, bk],
        &[kk],
    );
    g.add_op(
        "Input bias V",
        OpKind::Bias {
            axes: vec![Axis('w'), Axis('h')],
        },
        &[vv_raw, bv],
        &[vv],
    );
    // attention scores and weights
    let beta = g.add_data("beta", shape(dims, "hbjk"), DataRole::Activation);
    g.add_op("QKT", einsum("phbk,phbj->hbjk"), &[kk, qq], &[beta]);
    let att = g.add_data("att", shape(dims, "hbjk"), DataRole::Saved);
    g.add_op(
        "Scaled softmax",
        OpKind::Softmax { axis: Axis('k') },
        &[beta],
        &[att],
    );
    let alpha = g.add_data("alpha", shape(dims, "hbjk"), DataRole::Saved);
    let att_mask = g.add_data("att_mask", shape(dims, "hbjk"), DataRole::Saved);
    g.add_op("Dropout att", OpKind::Dropout, &[att], &[alpha, att_mask]);
    // output
    let gam = g.add_data("gamma", shape(dims, "whbj"), DataRole::Saved);
    g.add_op("Gamma", einsum("whbk,hbjk->whbj"), &[vv, alpha], &[gam]);
    let out_mm = g.add_data("out_mm", shape(dims, "ibj"), DataRole::Activation);
    g.add_op("Out", einsum("whi,whbj->ibj"), &[wo, gam], &[out_mm]);
    let out = g.add_data("out", shape(dims, "ibj"), DataRole::Output);
    g.add_op(
        "Output bias",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[out_mm, bo],
        &[out],
    );
    g
}

/// Named handles into the graph produced by [`encoder`], for tests and the
/// benchmark harness.
#[derive(Debug, Clone)]
pub struct EncoderGraph {
    /// The dataflow graph (unfused).
    pub graph: Graph,
    /// The encoder input `X`.
    pub x: NodeId,
    /// The incoming output gradient `dY`.
    pub dy: NodeId,
    /// The layer output `Y`.
    pub y: NodeId,
    /// The gradient w.r.t. the encoder input.
    pub dx: NodeId,
    /// Names of forward operators, in execution order.
    pub forward_ops: Vec<String>,
    /// Names of backward operators, in execution order.
    pub backward_ops: Vec<String>,
}

/// Builds the full BERT encoder layer training step (forward and backward)
/// for self-attention, with the Q/K/V projections algebraically fused into
/// stacked GEMMs (the configuration the paper's final implementation uses;
/// Table II shows QKV-fused is fastest).
pub fn encoder(dims: &EncoderDims) -> EncoderGraph {
    assert_eq!(
        dims.j, dims.k,
        "self-attention requires equal input/output sequence lengths"
    );
    let mut g = Graph::new();
    let mut fwd: Vec<String> = Vec::new();
    let mut bwd: Vec<String> = Vec::new();

    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    // ---- containers: inputs and weights ----
    let x = ph(&mut g, "x", "ibj", DataRole::Input);
    let w_qkv = g.add_data("w_qkv", stacked_shape(dims, "hi"), DataRole::Weight);
    let bq = ph(&mut g, "bq", "ph", DataRole::Weight);
    let bk = ph(&mut g, "bk", "ph", DataRole::Weight);
    let bv = ph(&mut g, "bv", "wh", DataRole::Weight);
    let wo = ph(&mut g, "wo", "whi", DataRole::Weight);
    let bo = ph(&mut g, "bo", "i", DataRole::Weight);
    let ln1_g = ph(&mut g, "ln1_gamma", "i", DataRole::Weight);
    let ln1_b = ph(&mut g, "ln1_beta", "i", DataRole::Weight);
    let w1 = ph(&mut g, "w1", "ui", DataRole::Weight);
    let b1 = ph(&mut g, "b1", "u", DataRole::Weight);
    let w2 = ph(&mut g, "w2", "iu", DataRole::Weight);
    let b2 = ph(&mut g, "b2", "i", DataRole::Weight);
    let ln2_g = ph(&mut g, "ln2_gamma", "i", DataRole::Weight);
    let ln2_b = ph(&mut g, "ln2_beta", "i", DataRole::Weight);

    let slice_words = dims.words("phbj");

    // ---- forward: multi-head self-attention ----
    let qkv_raw = g.add_data("qkv_raw", stacked_shape(dims, "hbj"), DataRole::Activation);
    fwd.push("Q,K,V".into());
    g.add_op("Q,K,V", einsum("shi,ibj->shbj"), &[w_qkv, x], &[qkv_raw]);

    let qq = ph(&mut g, "qq", "phbj", DataRole::Saved);
    let kk = ph(&mut g, "kk", "phbk", DataRole::Saved);
    let vv = ph(&mut g, "vv", "whbk", DataRole::Saved);
    for (name, bias, out, axes) in [
        ("Input bias Q", bq, qq, vec![Axis('p'), Axis('h')]),
        ("Input bias K", bk, kk, vec![Axis('p'), Axis('h')]),
        ("Input bias V", bv, vv, vec![Axis('w'), Axis('h')]),
    ] {
        fwd.push(name.into());
        let bias_words = g.data(bias).expect("bias").shape.num_elements() as u64;
        g.add_op_with_volumes(
            name,
            OpKind::Bias { axes },
            &[(qkv_raw, slice_words), (bias, bias_words)],
            &[(out, slice_words)],
        );
    }

    let beta = ph(&mut g, "beta", "hbjk", DataRole::Activation);
    fwd.push("QKT".into());
    g.add_op("QKT", einsum("phbk,phbj->hbjk"), &[kk, qq], &[beta]);

    let att = ph(&mut g, "att", "hbjk", DataRole::Saved);
    fwd.push("Scaled softmax".into());
    g.add_op(
        "Scaled softmax",
        OpKind::Softmax { axis: Axis('k') },
        &[beta],
        &[att],
    );

    let alpha = ph(&mut g, "alpha", "hbjk", DataRole::Saved);
    let att_mask = ph(&mut g, "att_mask", "hbjk", DataRole::Saved);
    fwd.push("Dropout att".into());
    g.add_op("Dropout att", OpKind::Dropout, &[att], &[alpha, att_mask]);

    let gam = ph(&mut g, "gamma", "whbj", DataRole::Saved);
    fwd.push("Gamma".into());
    g.add_op("Gamma", einsum("whbk,hbjk->whbj"), &[vv, alpha], &[gam]);

    let out_mm = ph(&mut g, "out_mm", "ibj", DataRole::Activation);
    fwd.push("Out".into());
    g.add_op("Out", einsum("whi,whbj->ibj"), &[wo, gam], &[out_mm]);

    let bo_out = ph(&mut g, "bo_out", "ibj", DataRole::Activation);
    fwd.push("Output bias".into());
    g.add_op(
        "Output bias",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[out_mm, bo],
        &[bo_out],
    );

    let drop1_out = ph(&mut g, "drop1_out", "ibj", DataRole::Activation);
    let drop1_mask = ph(&mut g, "drop1_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 1".into());
    g.add_op(
        "Dropout 1",
        OpKind::Dropout,
        &[bo_out],
        &[drop1_out, drop1_mask],
    );

    let ln1_in = ph(&mut g, "ln1_in", "ibj", DataRole::Saved);
    fwd.push("Residual 1".into());
    g.add_op("Residual 1", OpKind::Residual, &[drop1_out, x], &[ln1_in]);

    let ln1_out = ph(&mut g, "ln1_out", "ibj", DataRole::Saved);
    fwd.push("LayerNorm 1".into());
    g.add_op(
        "LayerNorm 1",
        OpKind::LayerNorm { axis: Axis('i') },
        &[ln1_in, ln1_g, ln1_b],
        &[ln1_out],
    );

    // ---- forward: feed-forward network ----
    let ff1 = ph(&mut g, "ff1", "ubj", DataRole::Activation);
    fwd.push("Linear 1".into());
    g.add_op("Linear 1", einsum("ui,ibj->ubj"), &[w1, ln1_out], &[ff1]);

    let ff1_b = ph(&mut g, "ff1_b", "ubj", DataRole::Saved);
    fwd.push("Bias 1".into());
    g.add_op(
        "Bias 1",
        OpKind::Bias {
            axes: vec![Axis('u')],
        },
        &[ff1, b1],
        &[ff1_b],
    );

    let ff1_relu = ph(&mut g, "ff1_relu", "ubj", DataRole::Activation);
    fwd.push("ReLU".into());
    g.add_op("ReLU", OpKind::Relu, &[ff1_b], &[ff1_relu]);

    let ff1_drop = ph(&mut g, "ff1_drop", "ubj", DataRole::Saved);
    let drop2_mask = ph(&mut g, "drop2_mask", "ubj", DataRole::Saved);
    fwd.push("Dropout 2".into());
    g.add_op(
        "Dropout 2",
        OpKind::Dropout,
        &[ff1_relu],
        &[ff1_drop, drop2_mask],
    );

    let ff2 = ph(&mut g, "ff2", "ibj", DataRole::Activation);
    fwd.push("Linear 2".into());
    g.add_op("Linear 2", einsum("iu,ubj->ibj"), &[w2, ff1_drop], &[ff2]);

    let ff2_b = ph(&mut g, "ff2_b", "ibj", DataRole::Activation);
    fwd.push("Bias 2".into());
    g.add_op(
        "Bias 2",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[ff2, b2],
        &[ff2_b],
    );

    let ff2_drop = ph(&mut g, "ff2_drop", "ibj", DataRole::Activation);
    let drop3_mask = ph(&mut g, "drop3_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 3".into());
    g.add_op(
        "Dropout 3",
        OpKind::Dropout,
        &[ff2_b],
        &[ff2_drop, drop3_mask],
    );

    let ln2_in = ph(&mut g, "ln2_in", "ibj", DataRole::Saved);
    fwd.push("Residual 2".into());
    g.add_op(
        "Residual 2",
        OpKind::Residual,
        &[ff2_drop, ln1_out],
        &[ln2_in],
    );

    let y = ph(&mut g, "y", "ibj", DataRole::Output);
    fwd.push("LayerNorm 2".into());
    g.add_op(
        "LayerNorm 2",
        OpKind::LayerNorm { axis: Axis('i') },
        &[ln2_in, ln2_g, ln2_b],
        &[y],
    );

    // ---- backward ----
    let dy = ph(&mut g, "dy", "ibj", DataRole::Gradient);

    let dln2_g = ph(&mut g, "d_ln2_gamma", "i", DataRole::Output);
    let dln2_b = ph(&mut g, "d_ln2_beta", "i", DataRole::Output);
    bwd.push("LayerNorm 2 dW".into());
    g.add_op(
        "LayerNorm 2 dW",
        OpKind::LayerNormGradW { axis: Axis('i') },
        &[dy, ln2_in],
        &[dln2_g, dln2_b],
    );

    let d_ln2_in = ph(&mut g, "d_ln2_in", "ibj", DataRole::Gradient);
    bwd.push("LayerNorm 2 dX".into());
    g.add_op(
        "LayerNorm 2 dX",
        OpKind::LayerNormGradX { axis: Axis('i') },
        &[dy, ln2_in, ln2_g],
        &[d_ln2_in],
    );

    let d_ff2_b = ph(&mut g, "d_ff2_b", "ibj", DataRole::Gradient);
    bwd.push("Dropout 3 dX".into());
    g.add_op(
        "Dropout 3 dX",
        OpKind::DropoutGrad,
        &[d_ln2_in, drop3_mask],
        &[d_ff2_b],
    );

    let db2 = ph(&mut g, "d_b2", "i", DataRole::Output);
    bwd.push("Bias 2 dW".into());
    g.add_op(
        "Bias 2 dW",
        OpKind::BiasGrad {
            axes: vec![Axis('i')],
        },
        &[d_ff2_b],
        &[db2],
    );

    let d_ff1_drop = ph(&mut g, "d_ff1_drop", "ubj", DataRole::Gradient);
    bwd.push("Linear 2 dX".into());
    g.add_op(
        "Linear 2 dX",
        einsum("iu,ibj->ubj"),
        &[w2, d_ff2_b],
        &[d_ff1_drop],
    );

    let dw2 = ph(&mut g, "d_w2", "iu", DataRole::Output);
    bwd.push("Linear 2 dW".into());
    g.add_op(
        "Linear 2 dW",
        einsum("ibj,ubj->iu"),
        &[d_ff2_b, ff1_drop],
        &[dw2],
    );

    let d_ff1_relu = ph(&mut g, "d_ff1_relu", "ubj", DataRole::Gradient);
    bwd.push("Dropout 2 dX".into());
    g.add_op(
        "Dropout 2 dX",
        OpKind::DropoutGrad,
        &[d_ff1_drop, drop2_mask],
        &[d_ff1_relu],
    );

    let d_ff1_b = ph(&mut g, "d_ff1_b", "ubj", DataRole::Gradient);
    bwd.push("ReLU dX".into());
    g.add_op(
        "ReLU dX",
        OpKind::ReluGrad,
        &[d_ff1_relu, ff1_b],
        &[d_ff1_b],
    );

    let db1 = ph(&mut g, "d_b1", "u", DataRole::Output);
    bwd.push("Bias 1 dW".into());
    g.add_op(
        "Bias 1 dW",
        OpKind::BiasGrad {
            axes: vec![Axis('u')],
        },
        &[d_ff1_b],
        &[db1],
    );

    let d_ln1_out_ffn = ph(&mut g, "d_ln1_out_ffn", "ibj", DataRole::Gradient);
    bwd.push("Linear 1 dX".into());
    g.add_op(
        "Linear 1 dX",
        einsum("ui,ubj->ibj"),
        &[w1, d_ff1_b],
        &[d_ln1_out_ffn],
    );

    let dw1 = ph(&mut g, "d_w1", "ui", DataRole::Output);
    bwd.push("Linear 1 dW".into());
    g.add_op(
        "Linear 1 dW",
        einsum("ubj,ibj->ui"),
        &[d_ff1_b, ln1_out],
        &[dw1],
    );

    // residual-2 gradient join (the add inside EBSB)
    let d_ln1_out = ph(&mut g, "d_ln1_out", "ibj", DataRole::Gradient);
    bwd.push("Residual 2 dX".into());
    g.add_op(
        "Residual 2 dX",
        OpKind::Residual,
        &[d_ln1_out_ffn, d_ln2_in],
        &[d_ln1_out],
    );

    let dln1_g = ph(&mut g, "d_ln1_gamma", "i", DataRole::Output);
    let dln1_b = ph(&mut g, "d_ln1_beta", "i", DataRole::Output);
    bwd.push("LayerNorm 1 dW".into());
    g.add_op(
        "LayerNorm 1 dW",
        OpKind::LayerNormGradW { axis: Axis('i') },
        &[d_ln1_out, ln1_in],
        &[dln1_g, dln1_b],
    );

    let d_ln1_in = ph(&mut g, "d_ln1_in", "ibj", DataRole::Gradient);
    bwd.push("LayerNorm 1 dX".into());
    g.add_op(
        "LayerNorm 1 dX",
        OpKind::LayerNormGradX { axis: Axis('i') },
        &[d_ln1_out, ln1_in, ln1_g],
        &[d_ln1_in],
    );

    let d_bo_out = ph(&mut g, "d_bo_out", "ibj", DataRole::Gradient);
    bwd.push("Dropout 1 dX".into());
    g.add_op(
        "Dropout 1 dX",
        OpKind::DropoutGrad,
        &[d_ln1_in, drop1_mask],
        &[d_bo_out],
    );

    let dbo = ph(&mut g, "d_bo", "i", DataRole::Output);
    bwd.push("Output bias dW".into());
    g.add_op(
        "Output bias dW",
        OpKind::BiasGrad {
            axes: vec![Axis('i')],
        },
        &[d_bo_out],
        &[dbo],
    );

    let d_gam = ph(&mut g, "d_gamma", "whbj", DataRole::Gradient);
    bwd.push("Out dX".into());
    g.add_op("Out dX", einsum("whi,ibj->whbj"), &[wo, d_bo_out], &[d_gam]);

    let dwo = ph(&mut g, "d_wo", "whi", DataRole::Output);
    bwd.push("Out dW".into());
    g.add_op("Out dW", einsum("whbj,ibj->whi"), &[gam, d_bo_out], &[dwo]);

    let d_alpha = ph(&mut g, "d_alpha", "hbjk", DataRole::Gradient);
    bwd.push("Gamma dX1".into());
    g.add_op(
        "Gamma dX1",
        einsum("whbk,whbj->hbjk"),
        &[vv, d_gam],
        &[d_alpha],
    );

    // stacked Q/K/V gradient container; the three writers fill slices
    let d_qkv = g.add_data("d_qkv", stacked_shape(dims, "hbj"), DataRole::Gradient);

    bwd.push("Gamma dX2".into());
    g.add_op_with_volumes(
        "Gamma dX2",
        einsum("whbj,hbjk->whbk"),
        &[(d_gam, dims.words("whbj")), (alpha, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );

    let d_att = ph(&mut g, "d_att", "hbjk", DataRole::Gradient);
    bwd.push("Dropout att dX".into());
    g.add_op(
        "Dropout att dX",
        OpKind::DropoutGrad,
        &[d_alpha, att_mask],
        &[d_att],
    );

    let d_beta = ph(&mut g, "d_beta", "hbjk", DataRole::Gradient);
    bwd.push("Scaled softmax dX".into());
    g.add_op(
        "Scaled softmax dX",
        OpKind::SoftmaxGrad { axis: Axis('k') },
        &[d_att, att],
        &[d_beta],
    );

    bwd.push("QKT dX1".into());
    g.add_op_with_volumes(
        "QKT dX1",
        einsum("phbk,hbjk->phbj"),
        &[(kk, dims.words("phbk")), (d_beta, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );
    bwd.push("QKT dX2".into());
    g.add_op_with_volumes(
        "QKT dX2",
        einsum("phbj,hbjk->phbk"),
        &[(qq, dims.words("phbj")), (d_beta, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );

    let dbq = ph(&mut g, "d_bq", "ph", DataRole::Output);
    let dbk = ph(&mut g, "d_bk", "ph", DataRole::Output);
    let dbv = ph(&mut g, "d_bv", "wh", DataRole::Output);
    bwd.push("Input bias dW".into());
    g.add_op(
        "Input bias dW",
        OpKind::BiasGrad {
            axes: vec![Axis('p'), Axis('h')],
        },
        &[d_qkv],
        &[dbq, dbk, dbv],
    );

    let d_x_mha = ph(&mut g, "d_x_mha", "ibj", DataRole::Gradient);
    bwd.push("Q,K,V dX".into());
    g.add_op(
        "Q,K,V dX",
        einsum("shi,shbj->ibj"),
        &[w_qkv, d_qkv],
        &[d_x_mha],
    );

    let dw_qkv = g.add_data("d_w_qkv", stacked_shape(dims, "hi"), DataRole::Output);
    bwd.push("Q,K,V dW".into());
    g.add_op("Q,K,V dW", einsum("shbj,ibj->shi"), &[d_qkv, x], &[dw_qkv]);

    let dx = ph(&mut g, "dx", "ibj", DataRole::Output);
    bwd.push("Residual 1 dX".into());
    g.add_op(
        "Residual 1 dX",
        OpKind::Residual,
        &[d_x_mha, d_ln1_in],
        &[dx],
    );

    EncoderGraph {
        graph: g,
        x,
        dy,
        y,
        dx,
        forward_ops: fwd,
        backward_ops: bwd,
    }
}

/// Builds a GPT-2-style decoder block training step (forward and
/// backward): **pre**-layer-norm ordering, causally *masked* self-attention
/// (Sec. II-B-1's masking step), and a GELU feed-forward — the "minor
/// aspects" by which decoder blocks differ from the BERT encoder
/// (Sec. VIII). Operator classes, iteration spaces, and therefore the
/// whole optimization recipe carry over unchanged.
pub fn decoder(dims: &EncoderDims) -> EncoderGraph {
    assert_eq!(
        dims.j, dims.k,
        "causal self-attention requires equal sequence lengths"
    );
    let mut g = Graph::new();
    let mut fwd: Vec<String> = Vec::new();
    let mut bwd: Vec<String> = Vec::new();
    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    // ---- containers ----
    let x = ph(&mut g, "x", "ibj", DataRole::Input);
    let w_qkv = g.add_data("w_qkv", stacked_shape(dims, "hi"), DataRole::Weight);
    let bq = ph(&mut g, "bq", "ph", DataRole::Weight);
    let bk = ph(&mut g, "bk", "ph", DataRole::Weight);
    let bv = ph(&mut g, "bv", "wh", DataRole::Weight);
    let wo = ph(&mut g, "wo", "whi", DataRole::Weight);
    let bo = ph(&mut g, "bo", "i", DataRole::Weight);
    let ln1_g = ph(&mut g, "ln1_gamma", "i", DataRole::Weight);
    let ln1_b = ph(&mut g, "ln1_beta", "i", DataRole::Weight);
    let w1 = ph(&mut g, "w1", "ui", DataRole::Weight);
    let b1 = ph(&mut g, "b1", "u", DataRole::Weight);
    let w2 = ph(&mut g, "w2", "iu", DataRole::Weight);
    let b2 = ph(&mut g, "b2", "i", DataRole::Weight);
    let ln2_g = ph(&mut g, "ln2_gamma", "i", DataRole::Weight);
    let ln2_b = ph(&mut g, "ln2_beta", "i", DataRole::Weight);
    let slice_words = dims.words("phbj");

    // ---- forward: pre-LN masked self-attention ----
    let ln1_out = ph(&mut g, "ln1_out", "ibj", DataRole::Saved);
    fwd.push("LayerNorm 1".into());
    g.add_op(
        "LayerNorm 1",
        OpKind::LayerNorm { axis: Axis('i') },
        &[x, ln1_g, ln1_b],
        &[ln1_out],
    );

    let qkv_raw = g.add_data("qkv_raw", stacked_shape(dims, "hbj"), DataRole::Activation);
    fwd.push("Q,K,V".into());
    g.add_op(
        "Q,K,V",
        einsum("shi,ibj->shbj"),
        &[w_qkv, ln1_out],
        &[qkv_raw],
    );

    let qq = ph(&mut g, "qq", "phbj", DataRole::Saved);
    let kk = ph(&mut g, "kk", "phbk", DataRole::Saved);
    let vv = ph(&mut g, "vv", "whbk", DataRole::Saved);
    for (name, bias, out, axes) in [
        ("Input bias Q", bq, qq, vec![Axis('p'), Axis('h')]),
        ("Input bias K", bk, kk, vec![Axis('p'), Axis('h')]),
        ("Input bias V", bv, vv, vec![Axis('w'), Axis('h')]),
    ] {
        fwd.push(name.into());
        let bias_words = g.data(bias).expect("bias").shape.num_elements() as u64;
        g.add_op_with_volumes(
            name,
            OpKind::Bias { axes },
            &[(qkv_raw, slice_words), (bias, bias_words)],
            &[(out, slice_words)],
        );
    }

    let beta = ph(&mut g, "beta", "hbjk", DataRole::Activation);
    fwd.push("QKT".into());
    g.add_op("QKT", einsum("phbk,phbj->hbjk"), &[kk, qq], &[beta]);

    let att = ph(&mut g, "att", "hbjk", DataRole::Saved);
    fwd.push("Masked softmax".into());
    g.add_op(
        "Masked softmax",
        OpKind::Softmax { axis: Axis('k') },
        &[beta],
        &[att],
    );

    let alpha = ph(&mut g, "alpha", "hbjk", DataRole::Saved);
    let att_mask = ph(&mut g, "att_mask", "hbjk", DataRole::Saved);
    fwd.push("Dropout att".into());
    g.add_op("Dropout att", OpKind::Dropout, &[att], &[alpha, att_mask]);

    let gam = ph(&mut g, "gamma", "whbj", DataRole::Saved);
    fwd.push("Gamma".into());
    g.add_op("Gamma", einsum("whbk,hbjk->whbj"), &[vv, alpha], &[gam]);

    let out_mm = ph(&mut g, "out_mm", "ibj", DataRole::Activation);
    fwd.push("Out".into());
    g.add_op("Out", einsum("whi,whbj->ibj"), &[wo, gam], &[out_mm]);

    let bo_out = ph(&mut g, "bo_out", "ibj", DataRole::Activation);
    fwd.push("Output bias".into());
    g.add_op(
        "Output bias",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[out_mm, bo],
        &[bo_out],
    );

    let drop1_out = ph(&mut g, "drop1_out", "ibj", DataRole::Activation);
    let drop1_mask = ph(&mut g, "drop1_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 1".into());
    g.add_op(
        "Dropout 1",
        OpKind::Dropout,
        &[bo_out],
        &[drop1_out, drop1_mask],
    );

    let res1 = ph(&mut g, "res1", "ibj", DataRole::Saved);
    fwd.push("Residual 1".into());
    g.add_op("Residual 1", OpKind::Residual, &[drop1_out, x], &[res1]);

    // ---- forward: pre-LN feed-forward ----
    let ln2_out = ph(&mut g, "ln2_out", "ibj", DataRole::Saved);
    fwd.push("LayerNorm 2".into());
    g.add_op(
        "LayerNorm 2",
        OpKind::LayerNorm { axis: Axis('i') },
        &[res1, ln2_g, ln2_b],
        &[ln2_out],
    );

    let ff1 = ph(&mut g, "ff1", "ubj", DataRole::Activation);
    fwd.push("Linear 1".into());
    g.add_op("Linear 1", einsum("ui,ibj->ubj"), &[w1, ln2_out], &[ff1]);

    let ff1_b = ph(&mut g, "ff1_b", "ubj", DataRole::Saved);
    fwd.push("Bias 1".into());
    g.add_op(
        "Bias 1",
        OpKind::Bias {
            axes: vec![Axis('u')],
        },
        &[ff1, b1],
        &[ff1_b],
    );

    let ff1_act = ph(&mut g, "ff1_act", "ubj", DataRole::Activation);
    fwd.push("GELU".into());
    g.add_op("GELU", OpKind::Relu, &[ff1_b], &[ff1_act]);

    let ff1_drop = ph(&mut g, "ff1_drop", "ubj", DataRole::Saved);
    let drop2_mask = ph(&mut g, "drop2_mask", "ubj", DataRole::Saved);
    fwd.push("Dropout 2".into());
    g.add_op(
        "Dropout 2",
        OpKind::Dropout,
        &[ff1_act],
        &[ff1_drop, drop2_mask],
    );

    let ff2 = ph(&mut g, "ff2", "ibj", DataRole::Activation);
    fwd.push("Linear 2".into());
    g.add_op("Linear 2", einsum("iu,ubj->ibj"), &[w2, ff1_drop], &[ff2]);

    let ff2_b = ph(&mut g, "ff2_b", "ibj", DataRole::Activation);
    fwd.push("Bias 2".into());
    g.add_op(
        "Bias 2",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[ff2, b2],
        &[ff2_b],
    );

    let ff2_drop = ph(&mut g, "ff2_drop", "ibj", DataRole::Activation);
    let drop3_mask = ph(&mut g, "drop3_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 3".into());
    g.add_op(
        "Dropout 3",
        OpKind::Dropout,
        &[ff2_b],
        &[ff2_drop, drop3_mask],
    );

    let y = ph(&mut g, "y", "ibj", DataRole::Output);
    fwd.push("Residual 2".into());
    g.add_op("Residual 2", OpKind::Residual, &[ff2_drop, res1], &[y]);

    // ---- backward ----
    let dy = ph(&mut g, "dy", "ibj", DataRole::Gradient);

    // residual 2 passes dy to both branches; FFN side first
    let d_ff2_b = ph(&mut g, "d_ff2_b", "ibj", DataRole::Gradient);
    bwd.push("Dropout 3 dX".into());
    g.add_op(
        "Dropout 3 dX",
        OpKind::DropoutGrad,
        &[dy, drop3_mask],
        &[d_ff2_b],
    );

    let db2 = ph(&mut g, "d_b2", "i", DataRole::Output);
    bwd.push("Bias 2 dW".into());
    g.add_op(
        "Bias 2 dW",
        OpKind::BiasGrad {
            axes: vec![Axis('i')],
        },
        &[d_ff2_b],
        &[db2],
    );

    let d_ff1_drop = ph(&mut g, "d_ff1_drop", "ubj", DataRole::Gradient);
    bwd.push("Linear 2 dX".into());
    g.add_op(
        "Linear 2 dX",
        einsum("iu,ibj->ubj"),
        &[w2, d_ff2_b],
        &[d_ff1_drop],
    );

    let dw2 = ph(&mut g, "d_w2", "iu", DataRole::Output);
    bwd.push("Linear 2 dW".into());
    g.add_op(
        "Linear 2 dW",
        einsum("ibj,ubj->iu"),
        &[d_ff2_b, ff1_drop],
        &[dw2],
    );

    let d_ff1_act = ph(&mut g, "d_ff1_act", "ubj", DataRole::Gradient);
    bwd.push("Dropout 2 dX".into());
    g.add_op(
        "Dropout 2 dX",
        OpKind::DropoutGrad,
        &[d_ff1_drop, drop2_mask],
        &[d_ff1_act],
    );

    let d_ff1_b = ph(&mut g, "d_ff1_b", "ubj", DataRole::Gradient);
    bwd.push("GELU dX".into());
    g.add_op("GELU dX", OpKind::ReluGrad, &[d_ff1_act, ff1_b], &[d_ff1_b]);

    let db1 = ph(&mut g, "d_b1", "u", DataRole::Output);
    bwd.push("Bias 1 dW".into());
    g.add_op(
        "Bias 1 dW",
        OpKind::BiasGrad {
            axes: vec![Axis('u')],
        },
        &[d_ff1_b],
        &[db1],
    );

    let d_ln2_out = ph(&mut g, "d_ln2_out", "ibj", DataRole::Gradient);
    bwd.push("Linear 1 dX".into());
    g.add_op(
        "Linear 1 dX",
        einsum("ui,ubj->ibj"),
        &[w1, d_ff1_b],
        &[d_ln2_out],
    );

    let dw1 = ph(&mut g, "d_w1", "ui", DataRole::Output);
    bwd.push("Linear 1 dW".into());
    g.add_op(
        "Linear 1 dW",
        einsum("ubj,ibj->ui"),
        &[d_ff1_b, ln2_out],
        &[dw1],
    );

    let dln2_g = ph(&mut g, "d_ln2_gamma", "i", DataRole::Output);
    let dln2_b = ph(&mut g, "d_ln2_beta", "i", DataRole::Output);
    bwd.push("LayerNorm 2 dW".into());
    g.add_op(
        "LayerNorm 2 dW",
        OpKind::LayerNormGradW { axis: Axis('i') },
        &[d_ln2_out, res1],
        &[dln2_g, dln2_b],
    );

    let d_ln2_in = ph(&mut g, "d_ln2_in", "ibj", DataRole::Gradient);
    bwd.push("LayerNorm 2 dX".into());
    g.add_op(
        "LayerNorm 2 dX",
        OpKind::LayerNormGradX { axis: Axis('i') },
        &[d_ln2_out, res1, ln2_g],
        &[d_ln2_in],
    );

    // res1 gradient = dy (skip branch of residual 2) + d_ln2_in
    let d_res1 = ph(&mut g, "d_res1", "ibj", DataRole::Gradient);
    bwd.push("Residual 2 dX".into());
    g.add_op(
        "Residual 2 dX",
        OpKind::Residual,
        &[dy, d_ln2_in],
        &[d_res1],
    );

    let d_bo_out = ph(&mut g, "d_bo_out", "ibj", DataRole::Gradient);
    bwd.push("Dropout 1 dX".into());
    g.add_op(
        "Dropout 1 dX",
        OpKind::DropoutGrad,
        &[d_res1, drop1_mask],
        &[d_bo_out],
    );

    let dbo = ph(&mut g, "d_bo", "i", DataRole::Output);
    bwd.push("Output bias dW".into());
    g.add_op(
        "Output bias dW",
        OpKind::BiasGrad {
            axes: vec![Axis('i')],
        },
        &[d_bo_out],
        &[dbo],
    );

    let d_gam = ph(&mut g, "d_gamma", "whbj", DataRole::Gradient);
    bwd.push("Out dX".into());
    g.add_op("Out dX", einsum("whi,ibj->whbj"), &[wo, d_bo_out], &[d_gam]);

    let dwo = ph(&mut g, "d_wo", "whi", DataRole::Output);
    bwd.push("Out dW".into());
    g.add_op("Out dW", einsum("whbj,ibj->whi"), &[gam, d_bo_out], &[dwo]);

    let d_alpha = ph(&mut g, "d_alpha", "hbjk", DataRole::Gradient);
    bwd.push("Gamma dX1".into());
    g.add_op(
        "Gamma dX1",
        einsum("whbk,whbj->hbjk"),
        &[vv, d_gam],
        &[d_alpha],
    );

    let d_qkv = g.add_data("d_qkv", stacked_shape(dims, "hbj"), DataRole::Gradient);
    bwd.push("Gamma dX2".into());
    g.add_op_with_volumes(
        "Gamma dX2",
        einsum("whbj,hbjk->whbk"),
        &[(d_gam, dims.words("whbj")), (alpha, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );

    let d_att = ph(&mut g, "d_att", "hbjk", DataRole::Gradient);
    bwd.push("Dropout att dX".into());
    g.add_op(
        "Dropout att dX",
        OpKind::DropoutGrad,
        &[d_alpha, att_mask],
        &[d_att],
    );

    let d_beta = ph(&mut g, "d_beta", "hbjk", DataRole::Gradient);
    bwd.push("Masked softmax dX".into());
    g.add_op(
        "Masked softmax dX",
        OpKind::SoftmaxGrad { axis: Axis('k') },
        &[d_att, att],
        &[d_beta],
    );

    bwd.push("QKT dX1".into());
    g.add_op_with_volumes(
        "QKT dX1",
        einsum("phbk,hbjk->phbj"),
        &[(kk, dims.words("phbk")), (d_beta, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );
    bwd.push("QKT dX2".into());
    g.add_op_with_volumes(
        "QKT dX2",
        einsum("phbj,hbjk->phbk"),
        &[(qq, dims.words("phbj")), (d_beta, dims.words("hbjk"))],
        &[(d_qkv, slice_words)],
    );

    let dbq = ph(&mut g, "d_bq", "ph", DataRole::Output);
    let dbk = ph(&mut g, "d_bk", "ph", DataRole::Output);
    let dbv = ph(&mut g, "d_bv", "wh", DataRole::Output);
    bwd.push("Input bias dW".into());
    g.add_op(
        "Input bias dW",
        OpKind::BiasGrad {
            axes: vec![Axis('p'), Axis('h')],
        },
        &[d_qkv],
        &[dbq, dbk, dbv],
    );

    let d_ln1_out = ph(&mut g, "d_ln1_out", "ibj", DataRole::Gradient);
    bwd.push("Q,K,V dX".into());
    g.add_op(
        "Q,K,V dX",
        einsum("shi,shbj->ibj"),
        &[w_qkv, d_qkv],
        &[d_ln1_out],
    );

    let dw_qkv = g.add_data("d_w_qkv", stacked_shape(dims, "hi"), DataRole::Output);
    bwd.push("Q,K,V dW".into());
    g.add_op(
        "Q,K,V dW",
        einsum("shbj,ibj->shi"),
        &[d_qkv, ln1_out],
        &[dw_qkv],
    );

    let dln1_g = ph(&mut g, "d_ln1_gamma", "i", DataRole::Output);
    let dln1_b = ph(&mut g, "d_ln1_beta", "i", DataRole::Output);
    bwd.push("LayerNorm 1 dW".into());
    g.add_op(
        "LayerNorm 1 dW",
        OpKind::LayerNormGradW { axis: Axis('i') },
        &[d_ln1_out, x],
        &[dln1_g, dln1_b],
    );

    let d_ln1_in = ph(&mut g, "d_ln1_in", "ibj", DataRole::Gradient);
    bwd.push("LayerNorm 1 dX".into());
    g.add_op(
        "LayerNorm 1 dX",
        OpKind::LayerNormGradX { axis: Axis('i') },
        &[d_ln1_out, x, ln1_g],
        &[d_ln1_in],
    );

    let dx = ph(&mut g, "dx", "ibj", DataRole::Output);
    bwd.push("Residual 1 dX".into());
    g.add_op(
        "Residual 1 dX",
        OpKind::Residual,
        &[d_ln1_in, d_res1],
        &[dx],
    );

    EncoderGraph {
        graph: g,
        x,
        dy,
        y,
        dx,
        forward_ops: fwd,
        backward_ops: bwd,
    }
}

/// A forward-only dataflow graph, for inference plans with no backward
/// half (decode prefill and per-step graphs). Containers are addressed by
/// name (`graph.data_by_name`); `forward_ops` lists the operator names in
/// execution order, before fusion.
#[derive(Debug, Clone)]
pub struct ForwardGraph {
    /// The dataflow graph (unfused).
    pub graph: Graph,
    /// Forward operator names in execution order.
    pub forward_ops: Vec<String>,
}

/// Forward-only copy of [`decoder`]: the same operator chain, names, and
/// container roles as the training decoder's forward half, with no `dy`
/// seed and no backward operators. Used for the decode *prefill* pass,
/// which runs the full prompt through each layer once and harvests the
/// saved `kk`/`vv` projections to seed the KV cache.
pub fn decoder_prefill(dims: &EncoderDims) -> ForwardGraph {
    assert_eq!(
        dims.j, dims.k,
        "causal self-attention requires equal sequence lengths"
    );
    let mut g = Graph::new();
    let mut fwd: Vec<String> = Vec::new();
    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    let x = ph(&mut g, "x", "ibj", DataRole::Input);
    let w_qkv = g.add_data("w_qkv", stacked_shape(dims, "hi"), DataRole::Weight);
    let bq = ph(&mut g, "bq", "ph", DataRole::Weight);
    let bk = ph(&mut g, "bk", "ph", DataRole::Weight);
    let bv = ph(&mut g, "bv", "wh", DataRole::Weight);
    let wo = ph(&mut g, "wo", "whi", DataRole::Weight);
    let bo = ph(&mut g, "bo", "i", DataRole::Weight);
    let ln1_g = ph(&mut g, "ln1_gamma", "i", DataRole::Weight);
    let ln1_b = ph(&mut g, "ln1_beta", "i", DataRole::Weight);
    let w1 = ph(&mut g, "w1", "ui", DataRole::Weight);
    let b1 = ph(&mut g, "b1", "u", DataRole::Weight);
    let w2 = ph(&mut g, "w2", "iu", DataRole::Weight);
    let b2 = ph(&mut g, "b2", "i", DataRole::Weight);
    let ln2_g = ph(&mut g, "ln2_gamma", "i", DataRole::Weight);
    let ln2_b = ph(&mut g, "ln2_beta", "i", DataRole::Weight);
    let slice_words = dims.words("phbj");

    let ln1_out = ph(&mut g, "ln1_out", "ibj", DataRole::Saved);
    fwd.push("LayerNorm 1".into());
    g.add_op(
        "LayerNorm 1",
        OpKind::LayerNorm { axis: Axis('i') },
        &[x, ln1_g, ln1_b],
        &[ln1_out],
    );

    let qkv_raw = g.add_data("qkv_raw", stacked_shape(dims, "hbj"), DataRole::Activation);
    fwd.push("Q,K,V".into());
    g.add_op(
        "Q,K,V",
        einsum("shi,ibj->shbj"),
        &[w_qkv, ln1_out],
        &[qkv_raw],
    );

    let qq = ph(&mut g, "qq", "phbj", DataRole::Saved);
    let kk = ph(&mut g, "kk", "phbk", DataRole::Saved);
    let vv = ph(&mut g, "vv", "whbk", DataRole::Saved);
    for (name, bias, out, axes) in [
        ("Input bias Q", bq, qq, vec![Axis('p'), Axis('h')]),
        ("Input bias K", bk, kk, vec![Axis('p'), Axis('h')]),
        ("Input bias V", bv, vv, vec![Axis('w'), Axis('h')]),
    ] {
        fwd.push(name.into());
        let bias_words = g.data(bias).expect("bias").shape.num_elements() as u64;
        g.add_op_with_volumes(
            name,
            OpKind::Bias { axes },
            &[(qkv_raw, slice_words), (bias, bias_words)],
            &[(out, slice_words)],
        );
    }

    let beta = ph(&mut g, "beta", "hbjk", DataRole::Activation);
    fwd.push("QKT".into());
    g.add_op("QKT", einsum("phbk,phbj->hbjk"), &[kk, qq], &[beta]);

    decoder_forward_tail(
        &mut g,
        &mut fwd,
        dims,
        DecoderTail {
            beta,
            x,
            vv_spec: None,
            vv,
            wo,
            bo,
            ln2_g,
            ln2_b,
            w1,
            b1,
            w2,
            b2,
        },
    );

    ForwardGraph {
        graph: g,
        forward_ops: fwd,
    }
}

/// Decode-step *projection* graph: for a single new token column
/// (`dims.j == 1`), layer-norm the input and compute the stacked Q/K/V
/// projection plus bias carve. Its outputs are the new query column
/// `qq_new` and the new cache columns `kk_new`/`vv_new` which the decode
/// session appends to the persistent K/V caches *before* running the
/// attention graph — so the query's own key is in the cache when the
/// scores are formed, exactly as in the full-sequence causal forward.
pub fn decoder_step_project(dims: &EncoderDims) -> ForwardGraph {
    assert_eq!(dims.j, 1, "decode step projects one token column");
    let mut g = Graph::new();
    let mut fwd: Vec<String> = Vec::new();
    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    let x = ph(&mut g, "x", "ibj", DataRole::Input);
    let w_qkv = g.add_data("w_qkv", stacked_shape(dims, "hi"), DataRole::Weight);
    let bq = ph(&mut g, "bq", "ph", DataRole::Weight);
    let bk = ph(&mut g, "bk", "ph", DataRole::Weight);
    let bv = ph(&mut g, "bv", "wh", DataRole::Weight);
    let ln1_g = ph(&mut g, "ln1_gamma", "i", DataRole::Weight);
    let ln1_b = ph(&mut g, "ln1_beta", "i", DataRole::Weight);
    let slice_words = dims.words("phbj");

    let ln1_out = ph(&mut g, "ln1_out", "ibj", DataRole::Activation);
    fwd.push("LayerNorm 1".into());
    g.add_op(
        "LayerNorm 1",
        OpKind::LayerNorm { axis: Axis('i') },
        &[x, ln1_g, ln1_b],
        &[ln1_out],
    );

    let qkv_raw = g.add_data("qkv_raw", stacked_shape(dims, "hbj"), DataRole::Activation);
    fwd.push("Q,K,V".into());
    g.add_op(
        "Q,K,V",
        einsum("shi,ibj->shbj"),
        &[w_qkv, ln1_out],
        &[qkv_raw],
    );

    let qq = ph(&mut g, "qq_new", "phbj", DataRole::Output);
    let kk = ph(&mut g, "kk_new", "phbj", DataRole::Output);
    let vv = ph(&mut g, "vv_new", "whbj", DataRole::Output);
    for (name, bias, out, axes) in [
        ("Input bias Q", bq, qq, vec![Axis('p'), Axis('h')]),
        ("Input bias K", bk, kk, vec![Axis('p'), Axis('h')]),
        ("Input bias V", bv, vv, vec![Axis('w'), Axis('h')]),
    ] {
        fwd.push(name.into());
        let bias_words = g.data(bias).expect("bias").shape.num_elements() as u64;
        g.add_op_with_volumes(
            name,
            OpKind::Bias { axes },
            &[(qkv_raw, slice_words), (bias, bias_words)],
            &[(out, slice_words)],
        );
    }

    ForwardGraph {
        graph: g,
        forward_ops: fwd,
    }
}

/// Decode-step *attention + feed-forward* graph: one query column
/// (`dims.j == 1`) attends over a persistent KV cache of capacity `dims.k`
/// and runs the rest of the decoder forward. The caches are
/// [`DataRole::Cache`] containers laid out position-major (`kphb` /
/// `kwhb`), so one decoded position is one contiguous column: live-in and
/// live-out of every plan run, read-only to every plan step, appended to
/// only *between* runs by the decode session.
///
/// Scores for cache slots past the current position are formed from the
/// slab's zero-initialized columns and masked to exact `0.0` by the causal
/// softmax, so the result is bitwise-identical to a full-sequence forward
/// truncated at the current position.
pub fn decoder_step_attend(dims: &EncoderDims) -> ForwardGraph {
    assert_eq!(dims.j, 1, "decode step attends one query column");
    let mut g = Graph::new();
    let mut fwd: Vec<String> = Vec::new();
    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    let x = ph(&mut g, "x", "ibj", DataRole::Input);
    let qq = ph(&mut g, "qq", "phbj", DataRole::Input);
    let k_cache = ph(&mut g, "k_cache", "kphb", DataRole::Cache);
    let v_cache = ph(&mut g, "v_cache", "kwhb", DataRole::Cache);
    let wo = ph(&mut g, "wo", "whi", DataRole::Weight);
    let bo = ph(&mut g, "bo", "i", DataRole::Weight);
    let w1 = ph(&mut g, "w1", "ui", DataRole::Weight);
    let b1 = ph(&mut g, "b1", "u", DataRole::Weight);
    let w2 = ph(&mut g, "w2", "iu", DataRole::Weight);
    let b2 = ph(&mut g, "b2", "i", DataRole::Weight);
    let ln2_g = ph(&mut g, "ln2_gamma", "i", DataRole::Weight);
    let ln2_b = ph(&mut g, "ln2_beta", "i", DataRole::Weight);

    let beta = ph(&mut g, "beta", "hbjk", DataRole::Activation);
    fwd.push("QKT".into());
    g.add_op("QKT", einsum("kphb,phbj->hbjk"), &[k_cache, qq], &[beta]);

    decoder_forward_tail(
        &mut g,
        &mut fwd,
        dims,
        DecoderTail {
            beta,
            x,
            vv_spec: Some("kwhb"),
            vv: v_cache,
            wo,
            bo,
            ln2_g,
            ln2_b,
            w1,
            b1,
            w2,
            b2,
        },
    );

    ForwardGraph {
        graph: g,
        forward_ops: fwd,
    }
}

/// Container handles feeding [`decoder_forward_tail`].
struct DecoderTail {
    beta: NodeId,
    x: NodeId,
    /// `Some(spec)` when the value tensor is a position-major cache whose
    /// Gamma einsum contracts the cache axis (`kwhb,hbjk->whbj`); `None`
    /// for the full-sequence `whbk` layout (`whbk,hbjk->whbj`).
    vv_spec: Option<&'static str>,
    vv: NodeId,
    wo: NodeId,
    bo: NodeId,
    ln2_g: NodeId,
    ln2_b: NodeId,
    w1: NodeId,
    b1: NodeId,
    w2: NodeId,
    b2: NodeId,
}

/// Shared forward chain from the attention scores (`beta`) to the layer
/// output `y`: masked softmax, attention dropout, the value contraction,
/// output projection + bias/dropout/residual, and the pre-LN feed-forward
/// block — with exactly the operator names, container names, and roles of
/// the training [`decoder`]'s forward half, so fused kernels and their
/// results are bitwise-identical across the full / prefill / step graphs.
fn decoder_forward_tail(g: &mut Graph, fwd: &mut Vec<String>, dims: &EncoderDims, t: DecoderTail) {
    let ph = |g: &mut Graph, name: &str, spec: &str, role: DataRole| -> NodeId {
        g.add_data(name, shape(dims, spec), role)
    };

    let att = ph(g, "att", "hbjk", DataRole::Saved);
    fwd.push("Masked softmax".into());
    g.add_op(
        "Masked softmax",
        OpKind::Softmax { axis: Axis('k') },
        &[t.beta],
        &[att],
    );

    let alpha = ph(g, "alpha", "hbjk", DataRole::Saved);
    let att_mask = ph(g, "att_mask", "hbjk", DataRole::Saved);
    fwd.push("Dropout att".into());
    g.add_op("Dropout att", OpKind::Dropout, &[att], &[alpha, att_mask]);

    let gam = ph(g, "gamma", "whbj", DataRole::Saved);
    fwd.push("Gamma".into());
    g.add_op(
        "Gamma",
        einsum(&format!("{},hbjk->whbj", t.vv_spec.unwrap_or("whbk"))),
        &[t.vv, alpha],
        &[gam],
    );

    let out_mm = ph(g, "out_mm", "ibj", DataRole::Activation);
    fwd.push("Out".into());
    g.add_op("Out", einsum("whi,whbj->ibj"), &[t.wo, gam], &[out_mm]);

    let bo_out = ph(g, "bo_out", "ibj", DataRole::Activation);
    fwd.push("Output bias".into());
    g.add_op(
        "Output bias",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[out_mm, t.bo],
        &[bo_out],
    );

    let drop1_out = ph(g, "drop1_out", "ibj", DataRole::Activation);
    let drop1_mask = ph(g, "drop1_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 1".into());
    g.add_op(
        "Dropout 1",
        OpKind::Dropout,
        &[bo_out],
        &[drop1_out, drop1_mask],
    );

    let res1 = ph(g, "res1", "ibj", DataRole::Saved);
    fwd.push("Residual 1".into());
    g.add_op("Residual 1", OpKind::Residual, &[drop1_out, t.x], &[res1]);

    let ln2_out = ph(g, "ln2_out", "ibj", DataRole::Saved);
    fwd.push("LayerNorm 2".into());
    g.add_op(
        "LayerNorm 2",
        OpKind::LayerNorm { axis: Axis('i') },
        &[res1, t.ln2_g, t.ln2_b],
        &[ln2_out],
    );

    let ff1 = ph(g, "ff1", "ubj", DataRole::Activation);
    fwd.push("Linear 1".into());
    g.add_op("Linear 1", einsum("ui,ibj->ubj"), &[t.w1, ln2_out], &[ff1]);

    let ff1_b = ph(g, "ff1_b", "ubj", DataRole::Saved);
    fwd.push("Bias 1".into());
    g.add_op(
        "Bias 1",
        OpKind::Bias {
            axes: vec![Axis('u')],
        },
        &[ff1, t.b1],
        &[ff1_b],
    );

    let ff1_act = ph(g, "ff1_act", "ubj", DataRole::Activation);
    fwd.push("GELU".into());
    g.add_op("GELU", OpKind::Relu, &[ff1_b], &[ff1_act]);

    let ff1_drop = ph(g, "ff1_drop", "ubj", DataRole::Saved);
    let drop2_mask = ph(g, "drop2_mask", "ubj", DataRole::Saved);
    fwd.push("Dropout 2".into());
    g.add_op(
        "Dropout 2",
        OpKind::Dropout,
        &[ff1_act],
        &[ff1_drop, drop2_mask],
    );

    let ff2 = ph(g, "ff2", "ibj", DataRole::Activation);
    fwd.push("Linear 2".into());
    g.add_op("Linear 2", einsum("iu,ubj->ibj"), &[t.w2, ff1_drop], &[ff2]);

    let ff2_b = ph(g, "ff2_b", "ibj", DataRole::Activation);
    fwd.push("Bias 2".into());
    g.add_op(
        "Bias 2",
        OpKind::Bias {
            axes: vec![Axis('i')],
        },
        &[ff2, t.b2],
        &[ff2_b],
    );

    let ff2_drop = ph(g, "ff2_drop", "ibj", DataRole::Activation);
    let drop3_mask = ph(g, "drop3_mask", "ibj", DataRole::Saved);
    fwd.push("Dropout 3".into());
    g.add_op(
        "Dropout 3",
        OpKind::Dropout,
        &[ff2_b],
        &[ff2_drop, drop3_mask],
    );

    let y = ph(g, "y", "ibj", DataRole::Output);
    fwd.push("Residual 2".into());
    g.add_op("Residual 2", OpKind::Residual, &[ff2_drop, res1], &[y]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flops::{op_flop, total_flop};
    use crate::op::OpClass;

    const GI: f64 = 1_073_741_824.0; // the paper's "Gflop" are Gi (2^30)

    #[test]
    fn mha_forward_has_fig1_structure() {
        let g = mha_forward(&EncoderDims::bert_large());
        assert_eq!(g.ops().len(), 12);
        let qkt = g.op_by_name("QKT").unwrap();
        // 4 Gi flop as annotated in Fig. 1b
        assert!((op_flop(&g, qkt).unwrap() as f64 / GI - 4.0).abs() < 0.01);
        let proj = g.op_by_name("Q").unwrap();
        // 8 Gi flop per projection
        assert!((op_flop(&g, proj).unwrap() as f64 / GI - 8.0).abs() < 0.01);
    }

    #[test]
    fn encoder_flop_matches_table3_rows() {
        let e = encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let gi = |name: &str| op_flop(g, g.op_by_name(name).unwrap()).unwrap() as f64 / GI;
        assert!((gi("Q,K,V") - 24.0).abs() < 0.05, "Q,K,V = {}", gi("Q,K,V"));
        assert!((gi("QKT") - 4.0).abs() < 0.05);
        assert!((gi("Gamma") - 4.0).abs() < 0.05);
        assert!((gi("Out") - 8.0).abs() < 0.05);
        assert!((gi("Linear 1") - 32.0).abs() < 0.05);
        assert!((gi("Linear 2") - 32.0).abs() < 0.05);
        assert!((gi("Linear 2 dX") - 32.0).abs() < 0.05);
        assert!((gi("Linear 1 dW") - 32.0).abs() < 0.05);
        assert!((gi("Q,K,V dX") - 24.0).abs() < 0.05);
        assert!((gi("Q,K,V dW") - 24.0).abs() < 0.05);
        assert!((gi("Out dX") - 8.0).abs() < 0.05);
        assert!((gi("Gamma dX1") - 4.0).abs() < 0.05);
        assert!((gi("QKT dX2") - 4.0).abs() < 0.05);
    }

    #[test]
    fn encoder_io_matches_table3_rows() {
        let e = encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let mw = |name: &str| {
            let op = g.op_by_name(name).unwrap();
            (
                g.input_words(op) as f64 / 1e6,
                g.output_words(op) as f64 / 1e6,
            )
        };
        let (i, o) = mw("Q,K,V");
        assert!((i - 7.3).abs() < 0.1, "Q,K,V in {i}");
        assert!((o - 12.5).abs() < 0.1, "Q,K,V out {o}");
        let (i, o) = mw("QKT");
        assert!((i - 8.3).abs() < 0.1);
        assert!((o - 33.5).abs() < 0.1);
        let (i, o) = mw("Gamma");
        assert!((i - 37.7).abs() < 0.1);
        assert!((o - 4.1).abs() < 0.1);
        let (i, o) = mw("Linear 1");
        assert!((i - 8.3).abs() < 0.1);
        assert!((o - 16.7).abs() < 0.2);
        let (i, o) = mw("Linear 2 dW");
        assert!((i - 20.9).abs() < 0.1);
        assert!((o - 4.1).abs() < 0.1);
        let (i, _) = mw("LayerNorm 2 dW");
        assert!((i - 8.3).abs() < 0.1);
        let (i, o) = mw("Q,K,V dX");
        assert!((i - 15.7).abs() < 0.1);
        assert!((o - 4.1).abs() < 0.1);
    }

    #[test]
    fn encoder_total_flop_matches_table3_total() {
        // Table III total: 312.633 Gi flop (PyTorch column ~326 with padding
        // overheads; the analytic requirement is 312).
        let e = encoder(&EncoderDims::bert_large());
        let total = total_flop(&e.graph) as f64 / GI;
        assert!(
            (total - 312.6).abs() < 2.0,
            "total encoder flop {total} Gi, expected ≈312.6"
        );
    }

    #[test]
    fn contraction_flop_share_matches_table1() {
        let e = encoder(&EncoderDims::bert_large());
        let g = &e.graph;
        let mut by_class = [0u64; 3];
        for op in g.ops() {
            let f = op_flop(g, op).unwrap();
            match g.op(op).unwrap().kind.class() {
                OpClass::TensorContraction => by_class[0] += f,
                OpClass::StatisticalNormalization => by_class[1] += f,
                OpClass::Elementwise => by_class[2] += f,
            }
        }
        let total: u64 = by_class.iter().sum();
        let pct = |x: u64| 100.0 * x as f64 / total as f64;
        // Table I: 99.80 / 0.17 / 0.03
        assert!(pct(by_class[0]) > 99.5, "contraction {}", pct(by_class[0]));
        assert!(pct(by_class[1]) < 0.4);
        assert!(pct(by_class[2]) < 0.1);
    }

    #[test]
    fn encoder_op_counts_and_handles() {
        let e = encoder(&EncoderDims::tiny());
        assert_eq!(e.forward_ops.len(), 22);
        assert_eq!(e.backward_ops.len(), 28);
        assert_eq!(e.graph.ops().len(), 22 + 28);
        for name in e.forward_ops.iter().chain(&e.backward_ops) {
            assert!(e.graph.op_by_name(name).is_some(), "missing op {name}");
        }
        assert!(e.graph.data(e.x).is_some());
        assert!(e.graph.data(e.dx).is_some());
    }

    #[test]
    fn decoder_block_structure() {
        let e = decoder(&EncoderDims::tiny());
        // pre-LN GPT-2 block: same operator count as the encoder step but
        // with the layer norms hoisted before the sub-blocks
        assert_eq!(e.forward_ops.len(), 22);
        assert_eq!(e.backward_ops.len(), 28);
        let g = &e.graph;
        // LayerNorm 1 feeds the projections (pre-LN)
        let ln1 = g.op_by_name("LayerNorm 1").unwrap();
        let ln1_out = g.outputs_of(ln1)[0];
        let qkv = g.op_by_name("Q,K,V").unwrap();
        assert!(g.inputs_of(qkv).contains(&ln1_out));
        // the masked softmax exists
        assert!(g.op_by_name("Masked softmax").is_some());
        assert!(g.op_by_name("GELU").is_some());
    }

    #[test]
    fn decoder_flop_matches_encoder_contractions() {
        // same dims → identical contraction flop; only normalization
        // placement differs
        let dims = EncoderDims::bert_large();
        let enc = encoder(&dims);
        let dec = decoder(&dims);
        let tc_flop = |e: &EncoderGraph| -> u64 {
            e.graph
                .ops()
                .into_iter()
                .filter(|&op| e.graph.op(op).unwrap().kind.class() == OpClass::TensorContraction)
                .map(|op| op_flop(&e.graph, op).unwrap())
                .sum()
        };
        assert_eq!(tc_flop(&enc), tc_flop(&dec));
    }

    #[test]
    fn decoder_gradients_reach_every_weight() {
        let e = decoder(&EncoderDims::tiny());
        let g = &e.graph;
        for name in [
            "d_w_qkv",
            "d_bq",
            "d_bk",
            "d_bv",
            "d_wo",
            "d_bo",
            "d_ln1_gamma",
            "d_ln1_beta",
            "d_w1",
            "d_b1",
            "d_w2",
            "d_b2",
            "d_ln2_gamma",
            "d_ln2_beta",
            "dx",
        ] {
            let id = g
                .data_by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(!g.producers_of(id).is_empty(), "{name} unproduced");
        }
    }

    #[test]
    fn builders_produce_structurally_valid_graphs() {
        for dims in [EncoderDims::tiny(), EncoderDims::bert_large()] {
            let e = encoder(&dims);
            assert!(
                e.graph.validate().is_empty(),
                "encoder: {:?}",
                e.graph.validate()
            );
            let d = decoder(&dims);
            assert!(
                d.graph.validate().is_empty(),
                "decoder: {:?}",
                d.graph.validate()
            );
            let m = mha_forward(&dims);
            assert!(m.validate().is_empty(), "mha: {:?}", m.validate());
        }
    }

    #[test]
    fn fused_graphs_stay_valid() {
        // after fusion the graph must still be structurally sound
        let e = encoder(&EncoderDims::tiny());
        let mut g = e.graph;
        // fuse a small chain by hand: Output bias → Dropout 1
        let a = g.op_by_name("Output bias").unwrap();
        let b = g.op_by_name("Dropout 1").unwrap();
        g.fuse(&[a, b], "F").unwrap();
        assert!(g.validate().is_empty(), "{:?}", g.validate());
    }

    #[test]
    fn every_gradient_or_output_is_produced() {
        let e = encoder(&EncoderDims::tiny());
        let g = &e.graph;
        for d in g.data_nodes() {
            let node = g.data(d).unwrap();
            match node.role {
                DataRole::Input | DataRole::Weight | DataRole::Cache => {
                    assert!(
                        g.producer_of(d).is_none(),
                        "{} should have no producer",
                        node.name
                    );
                }
                DataRole::Gradient | DataRole::Output | DataRole::Activation | DataRole::Saved => {
                    if node.name != "dy" {
                        assert!(
                            g.producer_of(d).is_some(),
                            "{} should have a producer",
                            node.name
                        );
                    }
                }
            }
        }
    }
}
