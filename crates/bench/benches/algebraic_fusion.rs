//! Real-CPU measurement of algebraic Q/K/V fusion (Table II): three
//! separate projection GEMMs vs one stacked GEMM over `[Wᵠ Wᵏ Wᵛ]`.
//! Stacking reads the shared input X once and amortizes the pack/unpack —
//! the same reuse argument as on the GPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use xform_tensor::{einsum, Axis, Shape, Tensor};

fn bench_qkv_fusion(c: &mut Criterion) {
    let sizes = [('p', 16), ('h', 4), ('i', 64), ('b', 4), ('j', 64)];
    let mut rng = StdRng::seed_from_u64(1);
    let dist = Uniform::new(-1.0f32, 1.0);
    let wq = Tensor::random(Shape::from_spec("phi", &sizes).unwrap(), &dist, &mut rng);
    let wk = Tensor::random(Shape::from_spec("phi", &sizes).unwrap(), &dist, &mut rng);
    let wv = Tensor::random(Shape::from_spec("phi", &sizes).unwrap(), &dist, &mut rng);
    let x = Tensor::random(Shape::from_spec("ibj", &sizes).unwrap(), &dist, &mut rng);
    let stacked = Tensor::stack(Axis('s'), &[&wq, &wk, &wv]).unwrap();

    let mut group = c.benchmark_group("qkv-projections");
    group.bench_function(BenchmarkId::new("unfused", "3 GEMMs"), |b| {
        b.iter(|| {
            let q = einsum("phi,ibj->phbj", &[black_box(&wq), black_box(&x)]).unwrap();
            let k = einsum("phi,ibj->phbj", &[black_box(&wk), black_box(&x)]).unwrap();
            let v = einsum("phi,ibj->phbj", &[black_box(&wv), black_box(&x)]).unwrap();
            black_box((q, k, v))
        })
    });
    group.bench_function(BenchmarkId::new("QKV fused", "1 stacked GEMM"), |b| {
        b.iter(|| {
            black_box(einsum("sphi,ibj->sphbj", &[black_box(&stacked), black_box(&x)]).unwrap())
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_qkv_fusion
}
criterion_main!(benches);
