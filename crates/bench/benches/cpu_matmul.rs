//! CPU GEMM and einsum benchmarks: the tiled kernel vs the naive triple
//! loop, and the einsum pack→GEMM→unpack pipeline on the paper's
//! projection shapes (scaled to CPU size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use xform_tensor::matmul::{batched_sgemm, naive_sgemm, sgemm};
use xform_tensor::{einsum, Shape, Tensor};

/// The pre-optimization inner kernel, kept verbatim for before/after
/// comparison: identical blocking to [`sgemm`] but with the `aik == 0`
/// skip branch in the hot loop (removed from the real kernel because the
/// branch costs more than the FMAs it saves on dense operands).
fn sgemm_skip_zero(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    const BLOCK: usize = 64;
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    let c_row = &mut c[i * n + j0..i * n + j1];
                    for kk in k0..k1 {
                        let aik = a[i * k + kk];
                        if aik == 0.0 {
                            continue;
                        }
                        let b_row = &b[kk * n + j0..kk * n + j1];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

fn bench_sgemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (m, n, k) = (256, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("sgemm-256");
    group.bench_function(BenchmarkId::new("tiled", "blocked"), |bch| {
        bch.iter(|| {
            let mut cbuf = vec![0.0f32; m * n];
            sgemm(m, n, k, black_box(&a), black_box(&b), &mut cbuf);
            black_box(cbuf)
        })
    });
    group.bench_function(
        BenchmarkId::new("tiled", "blocked + zero-skip (old)"),
        |bch| {
            bch.iter(|| {
                let mut cbuf = vec![0.0f32; m * n];
                sgemm_skip_zero(m, n, k, black_box(&a), black_box(&b), &mut cbuf);
                black_box(cbuf)
            })
        },
    );
    group.bench_function(BenchmarkId::new("naive", "triple loop"), |bch| {
        bch.iter(|| {
            let mut cbuf = vec![0.0f32; m * n];
            naive_sgemm(m, n, k, black_box(&a), black_box(&b), &mut cbuf);
            black_box(cbuf)
        })
    });
    group.finish();
}

fn bench_batched_sgemm(c: &mut Criterion) {
    // attention-score shape: many small independent GEMMs — the case the
    // scoped-thread batch parallelism targets
    let mut rng = StdRng::seed_from_u64(4);
    let (bsz, m, n, k) = (16, 48, 48, 64);
    let a: Vec<f32> = (0..bsz * m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..bsz * k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("batched-sgemm-16x48");
    group.bench_function(BenchmarkId::new("batched", "threaded"), |bch| {
        bch.iter(|| {
            let mut cbuf = vec![0.0f32; bsz * m * n];
            batched_sgemm(bsz, m, n, k, black_box(&a), black_box(&b), &mut cbuf);
            black_box(cbuf)
        })
    });
    group.bench_function(BenchmarkId::new("batched", "serial loop (old)"), |bch| {
        bch.iter(|| {
            let mut cbuf = vec![0.0f32; bsz * m * n];
            for g in 0..bsz {
                sgemm(
                    m,
                    n,
                    k,
                    black_box(&a[g * m * k..(g + 1) * m * k]),
                    black_box(&b[g * k * n..(g + 1) * k * n]),
                    &mut cbuf[g * m * n..(g + 1) * m * n],
                );
            }
            black_box(cbuf)
        })
    });
    group.finish();
}

use rand::Rng;

fn bench_einsum_projection(c: &mut Criterion) {
    // the query projection phi,ibj->phbj at CPU scale
    let sizes = [('p', 16), ('h', 4), ('i', 64), ('b', 4), ('j', 64)];
    let mut rng = StdRng::seed_from_u64(2);
    let w = Tensor::random(
        Shape::from_spec("phi", &sizes).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    let x = Tensor::random(
        Shape::from_spec("ibj", &sizes).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    c.bench_function("einsum phi,ibj->phbj", |b| {
        b.iter(|| black_box(einsum("phi,ibj->phbj", &[black_box(&w), black_box(&x)]).unwrap()))
    });
}

fn bench_einsum_batched(c: &mut Criterion) {
    // the attention-score batched contraction phbk,phbj->hbjk
    let sizes = [('p', 16), ('h', 4), ('b', 4), ('j', 48), ('k', 48)];
    let mut rng = StdRng::seed_from_u64(3);
    let kk = Tensor::random(
        Shape::from_spec("phbk", &sizes).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    let qq = Tensor::random(
        Shape::from_spec("phbj", &sizes).unwrap(),
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );
    c.bench_function("einsum phbk,phbj->hbjk", |b| {
        b.iter(|| black_box(einsum("phbk,phbj->hbjk", &[black_box(&kk), black_box(&qq)]).unwrap()))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sgemm, bench_batched_sgemm, bench_einsum_projection, bench_einsum_batched
}
criterion_main!(benches);
