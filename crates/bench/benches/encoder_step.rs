//! Full encoder-layer training step on the CPU: reference (unfused) vs
//! fused executor — the end-to-end counterpart of the per-kernel fusion
//! benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use xform_core::plan::ExecOptions;
use xform_dataflow::EncoderDims;
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::params::EncoderWeights;
use xform_transformer::training::synthetic_batch;

fn bench_encoder(c: &mut Criterion) {
    let dims = EncoderDims {
        b: 2,
        j: 32,
        k: 32,
        h: 4,
        p: 8,
        i: 32,
        u: 128,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let weights = EncoderWeights::init(&dims, &mut rng);
    let x = synthetic_batch(&dims, &mut rng).unwrap();

    let mut group = c.benchmark_group("encoder-step");
    for (label, executor) in [
        ("reference", Executor::Reference),
        ("fused", Executor::Fused),
    ] {
        let layer = EncoderLayer::new(dims, executor, 0.0);
        let opts = ExecOptions::builder().seed(2).build();
        group.bench_function(BenchmarkId::new("forward", label), |b| {
            b.iter(|| black_box(layer.forward(black_box(&x), &weights, &opts).unwrap()))
        });
        group.bench_function(BenchmarkId::new("fwd+bwd", label), |b| {
            b.iter(|| {
                let (y, acts) = layer
                    .forward(black_box(&x), &weights, &opts)
                    .unwrap()
                    .into_pair()
                    .unwrap();
                black_box(layer.backward(&y, &x, &weights, &acts).unwrap())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_encoder
}
criterion_main!(benches);
