//! Real-CPU measurement of data-layout sensitivity (the paper's Sec. V):
//! the same logical kernel with the reduction axis contiguous vs strided.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use xform_tensor::ops::layernorm::layernorm;
use xform_tensor::ops::softmax::softmax;
use xform_tensor::{Axis, Layout, Shape, Tensor};

fn bench_softmax_layouts(c: &mut Criterion) {
    let shape = Shape::new([('h', 8), ('b', 4), ('j', 96), ('k', 96)]).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let mut group = c.benchmark_group("softmax-layouts");
    for spec in ["hbjk", "hbkj", "kjbh"] {
        let t = x.relayout(&Layout::from_axis_order(&shape, spec).unwrap());
        group.bench_with_input(BenchmarkId::new("layout", spec), &t, |b, t| {
            b.iter(|| black_box(softmax(black_box(t), Axis('k')).unwrap()))
        });
    }
    group.finish();
}

fn bench_layernorm_layouts(c: &mut Criterion) {
    let shape = Shape::new([('i', 256), ('b', 8), ('j', 128)]).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let gamma = Tensor::random(
        Shape::new([('i', 256)]).unwrap(),
        &Uniform::new(0.5, 1.5),
        &mut rng,
    );
    let beta = Tensor::zeros(Shape::new([('i', 256)]).unwrap());
    let mut group = c.benchmark_group("layernorm-layouts");
    for spec in ["bji", "ibj", "jbi"] {
        let t = x.relayout(&Layout::from_axis_order(&shape, spec).unwrap());
        group.bench_with_input(BenchmarkId::new("layout", spec), &t, |b, t| {
            b.iter(|| black_box(layernorm(black_box(t), Axis('i'), &gamma, &beta).unwrap()))
        });
    }
    group.finish();
}

fn bench_relayout_cost(c: &mut Criterion) {
    // the explicit transpose that configuration selection may insert
    let shape = Shape::new([('i', 256), ('b', 8), ('j', 128)]).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let target = Layout::from_axis_order(&shape, "bji").unwrap();
    c.bench_function("relayout ibj->bji", |b| {
        b.iter(|| black_box(black_box(&x).relayout(&target)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_softmax_layouts, bench_layernorm_layouts, bench_relayout_cost
}
criterion_main!(benches);
