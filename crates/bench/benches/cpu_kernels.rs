//! Real-CPU measurement of the paper's central claim: fusing element-wise
//! and normalization operators saves memory traffic, so the fused kernels
//! beat the composition of unfused ones on actual hardware — not only in
//! the V100 model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use xform_tensor::fused;
use xform_tensor::ops::dropout::dropout_disabled;
use xform_tensor::ops::elementwise::{add, bias_add, relu, scale};
use xform_tensor::ops::layernorm::layernorm;
use xform_tensor::ops::softmax::softmax;
use xform_tensor::{Axis, Shape, Tensor};

fn rand_t(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::random(shape, &Uniform::new(-1.0, 1.0), &mut rng)
}

fn bench_brd(c: &mut Criterion) {
    // bias + ReLU + dropout over the feed-forward activation
    let shape = Shape::new([('b', 4), ('j', 64), ('u', 512)]).unwrap();
    let x = rand_t(shape, 1);
    let bias = rand_t(Shape::new([('u', 512)]).unwrap(), 2);
    let mut group = c.benchmark_group("bias+relu+dropout");
    group.bench_function(BenchmarkId::new("unfused", "3 sweeps"), |b| {
        b.iter(|| {
            let pre = bias_add(black_box(&x), &bias).unwrap();
            let act = relu(&pre);
            let (out, _) = dropout_disabled(&act);
            black_box(out)
        })
    });
    group.bench_function(BenchmarkId::new("fused BRD", "1 sweep"), |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(fused::brd(black_box(&x), &bias, 0.0, &mut rng).unwrap()))
    });
    group.finish();
}

fn bench_sm(c: &mut Criterion) {
    // scale + softmax + dropout over attention scores
    let shape = Shape::new([('h', 8), ('b', 4), ('j', 96), ('k', 96)]).unwrap();
    let beta = rand_t(shape, 4);
    let mut group = c.benchmark_group("scale+softmax+dropout");
    group.bench_function(BenchmarkId::new("unfused", "3 sweeps"), |b| {
        b.iter(|| {
            let s = scale(black_box(&beta), 0.125);
            let y = softmax(&s, Axis('k')).unwrap();
            let (out, _) = dropout_disabled(&y);
            black_box(out)
        })
    });
    group.bench_function(BenchmarkId::new("fused SM", "1 sweep"), |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(fused::sm(black_box(&beta), 0.125, Axis('k'), 0.0, &mut rng).unwrap()))
    });
    group.finish();
}

fn bench_bdrln(c: &mut Criterion) {
    // bias + dropout + residual + layernorm
    let shape = Shape::new([('i', 256), ('b', 4), ('j', 128)]).unwrap();
    let x = rand_t(shape.clone(), 6);
    let residual = rand_t(shape, 7);
    let bias = rand_t(Shape::new([('i', 256)]).unwrap(), 8);
    let gamma = rand_t(Shape::new([('i', 256)]).unwrap(), 9);
    let beta_w = rand_t(Shape::new([('i', 256)]).unwrap(), 10);
    let mut group = c.benchmark_group("bias+dropout+residual+layernorm");
    group.bench_function(BenchmarkId::new("unfused", "4 sweeps"), |b| {
        b.iter(|| {
            let z = bias_add(black_box(&x), &bias).unwrap();
            let (d, _) = dropout_disabled(&z);
            let ln_in = add(&d, &residual).unwrap();
            black_box(layernorm(&ln_in, Axis('i'), &gamma, &beta_w).unwrap())
        })
    });
    group.bench_function(BenchmarkId::new("fused BDRLN", "1 sweep"), |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| {
            black_box(
                fused::bdrln(
                    black_box(&x),
                    &bias,
                    &residual,
                    &gamma,
                    &beta_w,
                    Axis('i'),
                    0.0,
                    &mut rng,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_brd, bench_sm, bench_bdrln
}
criterion_main!(benches);
