//! Throughput of the V100 performance model itself: pricing a single GEMM
//! configuration, pricing a fused-kernel configuration, and a full
//! per-operator sweep. The exhaustive recipe evaluates hundreds of
//! thousands of configurations, so pricing must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::sweep::{sweep_op, SimulatorSource, SweepOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::contraction::{algorithms, gemm_cost, GemmLayout, GemmShape, MathMode};
use xform_gpusim::DeviceSpec;

fn bench_gemm_cost(c: &mut Criterion) {
    let device = DeviceSpec::v100();
    let shape = GemmShape {
        batch: 1,
        m: 4096,
        n: 4096,
        k: 1024,
    };
    let algo = algorithms()[3];
    c.bench_function("model: one GEMM config", |b| {
        b.iter(|| {
            black_box(gemm_cost(
                &device,
                black_box(shape),
                GemmLayout::ideal(),
                algo,
                MathMode::TensorCore,
            ))
        })
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    let dims = EncoderDims::bert_large();
    let mut g = build::encoder(&dims).graph;
    apply_plan(&mut g, &encoder_fusion_plan()).unwrap();
    let src = SimulatorSource::default();
    let sm = g.op_by_name("SM").unwrap();
    c.bench_function("model: full SM sweep (9216 configs)", |b| {
        b.iter(|| black_box(sweep_op(&src, &g, sm, SweepOptions::default()).unwrap()))
    });
    let qkt = g.op_by_name("QKT").unwrap();
    c.bench_function("model: QKT sweep capped at 10k", |b| {
        b.iter(|| {
            black_box(
                sweep_op(
                    &src,
                    &g,
                    qkt,
                    SweepOptions {
                        max_configs: Some(10_000),
                        ..SweepOptions::default()
                    },
                )
                .unwrap(),
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gemm_cost, bench_full_sweep
}
criterion_main!(benches);
