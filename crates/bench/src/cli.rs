//! Shared flag parsing for the audit/profile binaries.
//!
//! `plan_audit` and `plan_profile` grew their flag handling separately and
//! drifted; this module is the single surface both parse through, so
//! `--check`, `--json`, and `--help` behave identically everywhere:
//!
//! * `--help` (or `-h`) prints the binary's description, every registered
//!   flag with its doc line, and the `XFORM_*` environment registry from
//!   [`xform_core::env::list`] — then exits `0`;
//! * an unrecognized argument prints the valid flag set to stderr and
//!   exits `2` (distinct from exit `1`, which the binaries reserve for a
//!   failed `--check` gate);
//! * flags are order-insensitive and composable; repeating one is
//!   harmless.

/// One boolean flag a binary accepts.
#[derive(Debug, Clone, Copy)]
pub struct Flag {
    /// The literal argument, including the leading dashes (`"--check"`).
    pub name: &'static str,
    /// One help line.
    pub doc: &'static str,
}

/// The `--check` gate flag, shared verbatim by both binaries.
pub const CHECK: Flag = Flag {
    name: "--check",
    doc: "run the CI gate: compact pass, non-zero exit on any violation",
};

/// The `--json` mirror flag, shared verbatim by both binaries.
pub const JSON: Flag = Flag {
    name: "--json",
    doc: "write the machine-readable BENCH_*.json mirror",
};

/// Parsed command line: which registered flags were present.
#[derive(Debug)]
pub struct Cli {
    present: Vec<&'static str>,
}

impl Cli {
    /// Parses `std::env::args` against the registered flags.
    ///
    /// Prints help and exits `0` on `--help`/`-h`; prints the valid flag
    /// set and exits `2` on anything unrecognized.
    pub fn parse(program: &str, about: &str, flags: &[Flag]) -> Cli {
        Self::parse_from(program, about, flags, std::env::args().skip(1))
    }

    /// [`Cli::parse`] over an explicit argument list (testable core).
    ///
    /// Exits the process exactly like [`Cli::parse`] on `--help` or an
    /// unknown argument.
    pub fn parse_from(
        program: &str,
        about: &str,
        flags: &[Flag],
        args: impl IntoIterator<Item = String>,
    ) -> Cli {
        let mut present = Vec::new();
        for arg in args {
            if arg == "--help" || arg == "-h" {
                print!("{}", render_help(program, about, flags));
                std::process::exit(0);
            }
            match flags.iter().find(|f| f.name == arg) {
                Some(f) => {
                    if !present.contains(&f.name) {
                        present.push(f.name);
                    }
                }
                None => {
                    eprintln!(
                        "{program}: unknown argument `{arg}`; valid flags: {}, --help",
                        flags.iter().map(|f| f.name).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        Cli { present }
    }

    /// Whether `name` (e.g. `"--check"`) was passed.
    pub fn has(&self, name: &str) -> bool {
        self.present.contains(&name)
    }
}

/// Renders the `--help` text: usage, every flag, and the `XFORM_*`
/// environment registry — so each binary's help always lists every knob
/// that can change its behavior.
pub fn render_help(program: &str, about: &str, flags: &[Flag]) -> String {
    let mut out = format!("{program} — {about}\n\nusage: {program} [flags]\n\nflags:\n");
    let width = flags
        .iter()
        .map(|f| f.name.len())
        .chain(["--help".len()])
        .max()
        .unwrap_or(0);
    for f in flags {
        out.push_str(&format!("  {:width$}  {}\n", f.name, f.doc));
    }
    out.push_str(&format!(
        "  {:width$}  print this help and exit\n",
        "--help"
    ));
    out.push('\n');
    out.push_str(&xform_core::env::list());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_flags_are_recognized() {
        let cli = Cli::parse_from(
            "t",
            "test",
            &[CHECK, JSON],
            ["--json".to_string(), "--check".to_string()],
        );
        assert!(cli.has("--check"));
        assert!(cli.has("--json"));
        assert!(!cli.has("--cache"));
    }

    #[test]
    fn help_lists_every_flag_and_env_knob() {
        let help = render_help("plan_audit", "static audit", &[CHECK, JSON]);
        assert!(help.contains("--check"));
        assert!(help.contains("--json"));
        assert!(help.contains("--help"));
        for setting in xform_core::env::REGISTRY {
            assert!(
                help.contains(setting.name),
                "help must list {}",
                setting.name
            );
        }
    }
}
