//! Shared helpers for the benchmark harness: table formatting, runtime
//! distributions, paper reference values, and MHA operator subsets.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! see `EXPERIMENTS.md` at the workspace root for the index.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cli;

/// Simple fixed-width table printer for terminal reports.
#[derive(Debug, Default)]
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TablePrinter {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are preformatted strings).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(0);
                line.push_str(&format!("{c:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Summary statistics of a runtime distribution (for the violin figures).
#[derive(Debug, Clone, Copy)]
pub struct Distribution {
    /// Minimum (best) time.
    pub best: f64,
    /// Maximum (worst) time.
    pub worst: f64,
    /// Median.
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Number of samples.
    pub n: usize,
}

impl Distribution {
    /// Summarizes a sample of times.
    ///
    /// # Panics
    ///
    /// Panics if `times` is empty.
    pub fn from_times(times: &[f64]) -> Self {
        assert!(!times.is_empty(), "empty distribution");
        let mut sorted = times.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
        Distribution {
            best: sorted[0],
            worst: *sorted.last().expect("non-empty"),
            median: q(0.5),
            p10: q(0.1),
            p90: q(0.9),
            n: sorted.len(),
        }
    }

    /// A tiny ASCII sparkline of the distribution over log-spaced bins,
    /// standing in for the paper's violin plots.
    pub fn sparkline(&self, times: &[f64], bins: usize) -> String {
        let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.worst <= self.best {
            return "█".repeat(bins);
        }
        let lo = self.best.ln();
        let hi = self.worst.ln();
        let mut counts = vec![0usize; bins];
        for &t in times {
            let f = ((t.ln() - lo) / (hi - lo)).clamp(0.0, 1.0);
            let b = ((f * bins as f64) as usize).min(bins - 1);
            counts[b] += 1;
        }
        let max = *counts.iter().max().expect("bins > 0") as f64;
        counts
            .iter()
            .map(|&c| {
                let level = ((c as f64 / max) * 8.0).round() as usize;
                glyphs[level.min(8)]
            })
            .collect()
    }
}

/// Formats a µs value as ms with two decimals.
pub fn ms(us: f64) -> String {
    format!("{:.2}", us / 1000.0)
}

/// Formats a µs value with no decimals.
pub fn us(v: f64) -> String {
    format!("{v:.0}")
}

/// Operator names of the MHA sub-graph inside the fused encoder (forward),
/// for Table IV's MHA-only timing.
pub fn mha_forward_kernels() -> &'static [&'static str] {
    &["Q,K,V", "AIB", "QKT", "SM", "Gamma", "Out"]
}

/// Operator names of the MHA sub-graph (backward).
pub fn mha_backward_kernels() -> &'static [&'static str] {
    &[
        "BAOB",
        "Out dX",
        "Out dW",
        "Gamma dX1",
        "Gamma dX2",
        "BS",
        "QKT dX1",
        "QKT dX2",
        "BAIB",
        "Q,K,V dX",
        "Q,K,V dW",
    ]
}

/// Operator names of the MHA sub-graph in the *unfused* encoder graph
/// (forward), for baseline-framework profiles.
pub fn mha_forward_ops_unfused() -> &'static [&'static str] {
    &[
        "Q,K,V",
        "Input bias Q",
        "Input bias K",
        "Input bias V",
        "QKT",
        "Scaled softmax",
        "Dropout att",
        "Gamma",
        "Out",
    ]
}

/// Operator names of the MHA sub-graph in the unfused encoder (backward).
pub fn mha_backward_ops_unfused() -> &'static [&'static str] {
    &[
        "Output bias dW",
        "Out dX",
        "Out dW",
        "Gamma dX1",
        "Gamma dX2",
        "Dropout att dX",
        "Scaled softmax dX",
        "QKT dX1",
        "QKT dX2",
        "Input bias dW",
        "Q,K,V dX",
        "Q,K,V dW",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TablePrinter::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn distribution_stats() {
        let times: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = Distribution::from_times(&times);
        assert_eq!(d.best, 1.0);
        assert_eq!(d.worst, 100.0);
        assert!(d.median >= 49.0 && d.median <= 52.0);
        assert_eq!(d.n, 100);
        let spark = d.sparkline(&times, 10);
        assert_eq!(spark.chars().count(), 10);
    }

    #[test]
    fn kernel_name_lists_are_disjoint_fwd_bwd() {
        for f in mha_forward_kernels() {
            assert!(!mha_backward_kernels().contains(f));
        }
    }
}
