//! Sec. VIII-B "hardware implications": run the identical recipe on the
//! paper's V100 and on an A100 model. Compute grows faster than bandwidth
//! between the generations, so the memory-bound share of the optimized
//! encoder *increases* — data movement matters more on newer hardware, the
//! paper's forward-looking argument.

use xform_bench::TablePrinter;
use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::{EncoderDims, OpClass};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    println!("The same recipe, two GPU generations (BERT-large encoder, fwd+bwd)\n");
    let mut t = TablePrinter::new(&[
        "device",
        "total ms",
        "contraction ms",
        "memory-bound ms",
        "memory-bound %",
    ]);
    let mut rows = Vec::new();
    for device in [DeviceSpec::v100(), DeviceSpec::a100()] {
        let plan = optimize_encoder(&device, &dims, &RecipeOptions::default())?;
        let tc: f64 = plan
            .rows
            .iter()
            .filter(|r| r.class == OpClass::TensorContraction)
            .map(|r| r.time_us)
            .sum();
        let mem: f64 = plan
            .rows
            .iter()
            .filter(|r| r.class != OpClass::TensorContraction)
            .map(|r| r.time_us)
            .sum();
        let total = plan.total_us();
        t.row(&[
            device.name.clone(),
            format!("{:.2}", total / 1000.0),
            format!("{:.2}", tc / 1000.0),
            format!("{:.2}", mem / 1000.0),
            format!("{:.1}", 100.0 * mem / (tc + mem)),
        ]);
        rows.push((device.name.clone(), total, tc, mem));
    }
    t.print();
    let (_, _, tc_v, mem_v) = &rows[0];
    let (_, _, tc_a, mem_a) = &rows[1];
    println!(
        "\ncontractions sped up {:.2}×, memory-bound kernels only {:.2}× —\n\
         the memory-bound share grows with each hardware generation, so the\n\
         paper's data-movement recipe matters *more* over time (Sec. VIII-B).",
        tc_v / tc_a,
        mem_v / mem_a
    );
    Ok(())
}
