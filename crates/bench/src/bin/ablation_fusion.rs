//! Ablation: kernel fusion on vs off (same exhaustively tuned layouts),
//! isolating fusion's contribution to the end-to-end win and to the data-
//! movement reduction.

use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions};
use xform_dataflow::{analysis, build, EncoderDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let src = SimulatorSource::default();
    let opts = SweepOptions {
        max_configs: Some(30_000),
        ..SweepOptions::default()
    };

    let unfused = build::encoder(&dims).graph;
    let mut fused = unfused.clone();
    apply_plan(&mut fused, &encoder_fusion_plan())?;

    let total = |g: &xform_dataflow::Graph| -> Result<f64, Box<dyn std::error::Error>> {
        let sweeps = sweep_all(&src, g, opts)?;
        Ok(sweeps.values().map(|s| s.best.time_us).sum())
    };
    let t_unfused = total(&unfused)?;
    let t_fused = total(&fused)?;

    println!("Ablation: fusion on/off with per-op best layouts (BERT-large encoder)\n");
    println!(
        "unfused kernels : {:>8.0} µs over {} kernels",
        t_unfused,
        unfused.ops().len()
    );
    println!(
        "fused kernels   : {:>8.0} µs over {} kernels",
        t_fused,
        fused.ops().len()
    );
    println!("fusion speedup  : {:>8.2}×", t_unfused / t_fused);
    println!(
        "data movement   : {:>8.1}% reduction (paper: ~22.91%)",
        analysis::movement_reduction_pct(&unfused, &fused)
    );
    println!(
        "kernel launches : {} → {} (−{})",
        unfused.ops().len(),
        fused.ops().len(),
        unfused.ops().len() - fused.ops().len()
    );
    Ok(())
}
