//! Counterfactual hardware: re-price the optimized encoder on machines
//! with 10× bandwidth, 10× compute, or free kernel launches. Even after
//! the recipe, scaling compute alone recovers far less than scaling
//! bandwidth per unit — "training has now become memory-bound" holds after
//! optimization too, which is the paper's closing argument for
//! data-movement-aware hardware (Sec. VIII-B).

use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_core::report::whatif;
use xform_dataflow::EncoderDims;
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let plan = optimize_encoder(
        &device,
        &EncoderDims::bert_large(),
        &RecipeOptions::default(),
    )?;
    let w = whatif(&device, &plan)?;
    println!("Counterfactual hardware for the optimized encoder (fwd+bwd kernels)\n");
    println!("  as modelled (V100)        : {:8.0} µs", w.current_us);
    println!(
        "  10× DRAM bandwidth        : {:8.0} µs  ({:.2}× faster)",
        w.bandwidth_10x_us,
        w.current_us / w.bandwidth_10x_us
    );
    println!(
        "  10× compute peaks         : {:8.0} µs  ({:.2}× faster)",
        w.compute_10x_us,
        w.current_us / w.compute_10x_us
    );
    println!(
        "  zero launch overhead      : {:8.0} µs  ({:.2}× faster)",
        w.zero_launch_us,
        w.current_us / w.zero_launch_us
    );
    println!(
        "\nA 10× compute machine recovers {:.0}% of the ideal 10×; the rest is\n\
         data movement. The same budget spent on bandwidth is the better deal —\n\
         the hardware lesson the paper closes with.",
        100.0 * (w.current_us / w.compute_10x_us) / 10.0
    );
    Ok(())
}
