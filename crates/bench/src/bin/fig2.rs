//! Fig. 2 reproduction: the full encoder-layer training dataflow with flop
//! and flop-per-word annotations, forward and backward.

use xform_bench::TablePrinter;
use xform_dataflow::{analysis, build, EncoderDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let enc = build::encoder(&dims);
    println!(
        "Fig. 2: BERT-large encoder forward+backward dataflow (B=8, L=512)\n\
         Paper reference points: Linear 34G flop @ 585 flop/word; LayerNorm 29M @ 2.33;\n\
         dropout/bias/residual @ ~1/3 flop/word; total 312.6 Gi flop.\n"
    );
    let mut t = TablePrinter::new(&[
        "operator",
        "class",
        "Gflop (2^30)",
        "in (Mwords)",
        "out (Mwords)",
        "flop/word",
    ]);
    let mut total = 0.0;
    for a in analysis::annotate(&enc.graph) {
        total += a.flop as f64;
        t.row(&[
            a.name.clone(),
            a.class.glyph().to_string(),
            format!("{:.3}", a.flop as f64 / 1_073_741_824.0),
            format!("{:.1}", a.input_words as f64 / 1e6),
            format!("{:.1}", a.output_words as f64 / 1e6),
            format!("{:.2}", a.flop_per_word()),
        ]);
    }
    t.print();
    println!(
        "\ntotal: {:.1} Gi flop (paper: 312.6);  total data movement: {:.0} Mwords",
        total / 1_073_741_824.0,
        enc.graph.total_io_words() as f64 / 1e6
    );
    Ok(())
}
