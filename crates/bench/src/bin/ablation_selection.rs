//! Ablation: configuration-selection strategies — global shortest-path
//! (the paper's), unconstrained per-op best (a lower bound that ignores
//! layout compatibility), and a fixed natural layout everywhere.

use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::recipe::forward_ops;
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::opmodel::{op_cost, OpConfig};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();
    let src = SimulatorSource {
        device: device.clone(),
    };
    let mut g = build::encoder(&dims).graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    let dy = g.data_by_name("dy").expect("encoder graph");
    let fwd = forward_ops(&g, dy);
    let sweeps = sweep_all(
        &src,
        &g,
        SweepOptions {
            max_configs: Some(30_000),
            ..SweepOptions::default()
        },
    )?;

    let sel = select_forward(&g, &device, &fwd, &sweeps)?;
    let fixed: f64 = fwd
        .iter()
        .map(|&op| {
            let cfg = OpConfig::natural(&g, op).expect("natural config");
            op_cost(&device, &g, op, &cfg)
                .map(|c| c.time_us)
                .unwrap_or(f64::NAN)
        })
        .sum();

    println!("Ablation: layout-selection strategies (forward pass, µs)\n");
    println!(
        "per-op best (lower bound, ignores compatibility): {:>8.0}",
        sel.per_op_best_us
    );
    println!(
        "global shortest-path selection (the recipe)     : {:>8.0}  (+{:.1}%, paper: ≤4%)",
        sel.total_us,
        100.0 * (sel.total_us / sel.per_op_best_us - 1.0)
    );
    println!(
        "fixed natural layout everywhere                 : {:>8.0}  (+{:.1}%)",
        fixed,
        100.0 * (fixed / sel.per_op_best_us - 1.0)
    );
    println!(
        "transposes inserted by the selected path        : {:>8}",
        sel.transposes
    );
    println!(
        "\nGlobal selection recovers nearly all of the per-op optimum while staying\n\
         layout-consistent; a single fixed layout leaves substantial time on the table\n\
         (\"one cannot simply pick a single data layout a priori\", Sec. VI)."
    );
    Ok(())
}
