//! Sec. V-A's library-heuristic study: how much worse the cuBLAS-style
//! heuristic algorithm choice is than exhaustive algorithm selection, per
//! encoder contraction. Paper: up to 14.24% (half precision) / 7.18%
//! (single precision).

use xform_bench::TablePrinter;
use xform_dataflow::{build, EncoderDims, OpKind};
use xform_gpusim::contraction::{
    best_algo_cost, gemm_cost, heuristic_algorithm, GemmLayout, GemmShape, MathMode,
};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_large();
    let g = build::encoder(&dims).graph;

    println!("GEMM algorithm heuristic vs exhaustive selection (Sec. V-A)\n");
    let mut t = TablePrinter::new(&["contraction", "B", "M", "N", "K", "gap TC %", "gap FP16 %"]);
    let mut max_tc = 0.0f64;
    let mut max_fp = 0.0f64;
    for op in g.ops() {
        let node = g.op(op).expect("live");
        let OpKind::Einsum(spec) = &node.kind else {
            continue;
        };
        let inputs = g.inputs_of(op);
        let a = &g.data(inputs[0]).expect("data").shape;
        let b = &g.data(inputs[1]).expect("data").shape;
        let s = spec.gemm_sizes(a, b)?;
        let shape = GemmShape {
            batch: s.batch,
            m: s.m,
            n: s.n,
            k: s.k,
        };
        let gap = |math: MathMode| -> f64 {
            let h = gemm_cost(
                &device,
                shape,
                GemmLayout::ideal(),
                heuristic_algorithm(shape),
                math,
            );
            let (_, best) = best_algo_cost(&device, shape, GemmLayout::ideal(), math);
            100.0 * (h.time_us / best.time_us - 1.0)
        };
        let (gtc, gfp) = (gap(MathMode::TensorCore), gap(MathMode::Fp16));
        max_tc = max_tc.max(gtc);
        max_fp = max_fp.max(gfp);
        t.row(&[
            node.name.clone(),
            s.batch.to_string(),
            s.m.to_string(),
            s.n.to_string(),
            s.k.to_string(),
            format!("{gtc:.2}"),
            format!("{gfp:.2}"),
        ]);
    }
    t.print();
    println!(
        "\nmax gap: {max_tc:.2}% (tensor cores) / {max_fp:.2}% (FP16 FPUs)\n\
         paper: up to 14.24% at half precision, 7.18% at single precision —\n\
         the heuristic is good but not always optimal, so exhaustive search pays."
    );
    Ok(())
}
