//! Table I reproduction: flop and runtime proportions per operator class
//! for a BERT-large encoder layer under the PyTorch execution model.

use xform_bench::TablePrinter;
use xform_dataflow::{analysis, build, EncoderDims, OpClass};
use xform_gpusim::framework::{execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let enc = build::encoder(&dims);
    let device = DeviceSpec::v100();

    let shares = analysis::class_shares(&enc.graph);
    let profile = execute(&enc.graph, &device, &FrameworkPolicy::pytorch())?;
    let classes = [
        (OpClass::TensorContraction, 99.80, 61.0),
        (OpClass::StatisticalNormalization, 0.17, 25.5),
        (OpClass::Elementwise, 0.03, 13.5),
    ];
    let total_rt: f64 = classes
        .iter()
        .map(|(c, _, _)| profile.class_time_us(*c))
        .sum();

    println!("Table I: proportions for operator classes (BERT-large encoder, B=8, L=512)\n");
    let mut t = TablePrinter::new(&[
        "operator class",
        "% flop (paper)",
        "% flop (ours)",
        "% runtime (paper)",
        "% runtime (ours)",
    ]);
    for (class, paper_flop, paper_rt) in classes {
        let share = shares
            .iter()
            .find(|s| s.class == class)
            .expect("class present");
        let rt = 100.0 * profile.class_time_us(class) / total_rt;
        t.row(&[
            format!("{} {}", class.glyph(), class),
            format!("{paper_flop:.2}"),
            format!("{:.2}", share.flop_pct),
            format!("{paper_rt:.1}"),
            format!("{rt:.1}"),
        ]);
    }
    t.print();
    println!(
        "\nOver a third of the runtime is spent in memory-bound (non-contraction) operators,\n\
         while they perform <0.2% of the flop — the paper's headline observation."
    );
    Ok(())
}
