//! Table V reproduction: full encoder-layer forward/backward time under
//! PyTorch, TensorFlow+XLA, DeepSpeed, and our implementation.

use xform_bench::TablePrinter;
use xform_core::algebraic::qkv_variants;
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::recipe::{backward_ops, forward_ops, optimize_encoder, RecipeOptions};
use xform_dataflow::{build, EncoderDims, Graph, NodeId};
use xform_gpusim::framework::{execute, ExecutionProfile, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn split_ms(graph: &Graph, profile: &ExecutionProfile) -> (f64, f64) {
    let dy = graph.data_by_name("dy").expect("encoder graph");
    let fwd: Vec<NodeId> = forward_ops(graph, dy);
    let bwd: Vec<NodeId> = backward_ops(graph, dy);
    let time = |ops: &[NodeId]| -> f64 {
        profile
            .rows
            .iter()
            .filter(|r| ops.contains(&r.op))
            .map(|r| r.cost.time_us + r.overhead_us)
            .sum::<f64>()
            / 1000.0
    };
    (time(&fwd), time(&bwd))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_large();

    // PyTorch: eager, unfused graph (but with the algebraic QKV fusion,
    // which PyTorch's implementation performs — Sec. VI-C).
    let unfused = build::encoder(&dims).graph;
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch())?;
    let (pt_f, pt_b) = split_ms(&unfused, &pt);

    // TF+XLA: fuses element-wise chains (the paper's fusion plan is a
    // superset of XLA's) but misses the algebraic QKV fusion: add back the
    // Table II gap.
    let mut xla_graph = build::encoder(&dims).graph;
    apply_plan(&mut xla_graph, &encoder_fusion_plan())?;
    let xla = execute(&xla_graph, &device, &FrameworkPolicy::tf_xla())?;
    let (mut xla_f, mut xla_b) = split_ms(&xla_graph, &xla);
    let alg = qkv_variants(&device, &dims);
    xla_f += (alg[0].forward_us - alg[2].forward_us) / 1000.0;
    xla_b += 2.0 * (alg[0].backward_us - alg[2].backward_us) / 1000.0; // dX and dW

    // DeepSpeed: manually fused and tuned.
    let mut ds_graph = build::encoder(&dims).graph;
    apply_plan(&mut ds_graph, &encoder_fusion_plan())?;
    let ds = execute(&ds_graph, &device, &FrameworkPolicy::deepspeed())?;
    let (ds_f, ds_b) = split_ms(&ds_graph, &ds);

    // Ours: the full recipe.
    let ours = optimize_encoder(&device, &dims, &RecipeOptions::default())?;
    let (our_f, our_b) = (ours.forward_us / 1000.0, ours.backward_us / 1000.0);

    println!("Table V: full BERT encoder layer performance (ms)\n");
    let mut t = TablePrinter::new(&["", "PT", "TF+XLA", "DS", "Ours"]);
    t.row(&[
        "Forward (ours)".into(),
        format!("{pt_f:.2}"),
        format!("{xla_f:.2}"),
        format!("{ds_f:.2}"),
        format!("{our_f:.2}"),
    ]);
    t.row(&[
        "Forward (paper)".into(),
        "3.45".into(),
        "3.2".into(),
        "2.8".into(),
        "2.63".into(),
    ]);
    t.row(&[
        "Backward (ours)".into(),
        format!("{pt_b:.2}"),
        format!("{xla_b:.2}"),
        format!("{ds_b:.2}"),
        format!("{our_b:.2}"),
    ]);
    t.row(&[
        "Backward (paper)".into(),
        "5.69".into(),
        "5.2".into(),
        "4.8".into(),
        "4.38".into(),
    ]);
    t.print();
    let speedup_pt = (pt_f + pt_b) / (our_f + our_b);
    let speedup_ds = (ds_f + ds_b) / (our_f + our_b);
    println!(
        "\nspeedups (fwd+bwd): {speedup_pt:.2}× over PyTorch (paper: 1.30×), \
         {speedup_ds:.2}× over DeepSpeed (paper: 1.08×)"
    );
    Ok(())
}
