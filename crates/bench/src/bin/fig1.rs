//! Fig. 1b reproduction: the multi-head attention dataflow graph with
//! per-operator flop and flop/IO annotations.

use xform_bench::TablePrinter;
use xform_dataflow::{analysis, build, EncoderDims};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let g = build::mha_forward(&dims);
    println!(
        "Fig. 1b: MHA forward dataflow (P=W=64, H=16, I=1024, B=8, J=K=512)\n\
         Paper annotations: projections 8G flop @ 910 flop/word; QKT 4G @ 102;\n\
         softmax 160M @ 2.5; bias nodes ~4M @ 0.5.\n"
    );
    let mut t = TablePrinter::new(&["operator", "class", "Gflop (2^30)", "flop/word", "bound"]);
    for a in analysis::annotate(&g) {
        let fpw = a.flop_per_word();
        t.row(&[
            a.name.clone(),
            a.class.glyph().to_string(),
            format!("{:.3}", a.flop as f64 / 1_073_741_824.0),
            format!("{fpw:.1}"),
            if fpw < 1.0 {
                "IO > flop".into()
            } else if fpw < 10.0 {
                "IO ≈ flop".into()
            } else {
                "IO < flop".into()
            },
        ]);
    }
    t.print();
    Ok(())
}
