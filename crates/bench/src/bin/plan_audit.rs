//! Static data-movement audit of execution plans — no kernel ever runs.
//!
//! For each schedule (Reference encoder, Fused encoder, Fused decoder, and
//! a recipe-selected plan lowered from simulator sweeps) this prints the
//! report of `xform_core::analyze`: the dependency DAG's parallel waves,
//! peak resident bytes, per-operator-class byte volumes (Table I style),
//! the plan-level static MUE (`Q/D · B/B̂`), and every lint the analyzer
//! raises. The audited set includes the GEMM-epilogue mega-kernel plans,
//! which must beat their unfused counterparts on the static account:
//! `D` strictly lower with `Q` unchanged and a strictly smaller serial
//! arena slab — violations fail the audit. With `--check` it exits
//! non-zero if any plan carries an error-severity lint or any plan's
//! static MUE regresses below the checked-in floor in
//! `crates/bench/baseline_static_mue.txt` — CI uses this to fail the
//! build on a lint-dirty or MUE-regressed canned plan. With `--certify` it runs the full race certifier
//! (`xform_core::sanitize::certify`) on every plan and prints each
//! certificate's fingerprint and wave partition, exiting non-zero if any
//! plan cannot be certified for wave-parallel execution. With `--access`
//! it runs the access-path certifier (`xform_core::access`) at the
//! logical level and at both arena granularities, printing each plan's
//! licensed-step count and every access lint, exiting non-zero if any
//! plan fails certification (error-severity access lints). Strided inner
//! loops are warnings — they demote steps to the checked kernels but do
//! not fail the audit.

use std::collections::HashMap;

use xform_core::access::{certify_access, certify_access_arena};
use xform_core::analyze::{
    analyze, assign_arena, audit, lint_selection, render_report, ArenaGranularity, Severity,
};
use xform_core::plan::ExecutionPlan;
use xform_core::sanitize::certify;
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions, SweepResult};
use xform_dataflow::{EncoderDims, Graph, NodeId};
use xform_gpusim::mue::Mue;
use xform_gpusim::DeviceSpec;
use xform_transformer::interp;

/// Checked-in static-MUE floor per canned plan. `--check` fails when any
/// plan's audited static MUE regresses below its pinned value; re-pin by
/// editing the file when a change legitimately raises a floor.
const BASELINE: &str = include_str!("../../baseline_static_mue.txt");

/// Tolerance (MUE points) when comparing against the pinned baseline,
/// absorbing float-summation noise across platforms.
const BASELINE_TOL: f64 = 0.05;

struct Audited {
    title: &'static str,
    /// Stable key into the static-MUE baseline file; empty when the plan
    /// is not baselined.
    key: &'static str,
    errors: usize,
    /// The audited static plan MUE (None in certify/access modes).
    mue: Option<Mue>,
    /// Serial arena slab bytes (None in certify/access modes).
    slab_bytes: Option<u64>,
}

fn baseline() -> HashMap<&'static str, f64> {
    BASELINE
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (key, value) = l.split_once(char::is_whitespace)?;
            Some((key, value.trim().parse().ok()?))
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full rendered report per plan.
    Full,
    /// Lint summary only, non-zero exit on error lints.
    Check,
    /// Race certification, non-zero exit on an uncertifiable plan.
    Certify,
    /// Access-path certification at the logical level and both arena
    /// granularities, non-zero exit on error-severity access lints.
    Access,
}

/// Runs the access-path certifier on one plan: logically and embedded
/// into the arena coloring at both granularities. Returns the number of
/// error lints across the three passes.
fn report_access(title: &str, graph: &Graph, plan: &ExecutionPlan) -> usize {
    let analysis = analyze(graph, plan);
    let mut errors = 0usize;
    let logical = certify_access(graph, plan).map(|c| (c, "logical".to_string()));
    let passes = [ArenaGranularity::Serial, ArenaGranularity::Waves]
        .into_iter()
        .map(|gran| {
            let arena = assign_arena(&analysis, gran);
            certify_access_arena(graph, plan, &arena).map(|c| (c, format!("arena/{gran:?}")))
        });
    for outcome in std::iter::once(logical).chain(passes) {
        match outcome {
            Ok((cert, tag)) => {
                println!(
                    "{title} [{tag}]: certified {:#018x} — {}/{} steps licensed, {} warnings",
                    cert.plan_hash,
                    cert.licensed_steps(),
                    cert.steps.len(),
                    cert.lints.len()
                );
                for lint in &cert.lints {
                    println!("  [warning] {lint}");
                }
            }
            Err(lints) => {
                let fatal = lints
                    .iter()
                    .filter(|l| l.severity() == Severity::Error)
                    .count();
                println!("{title}: access certification FAILED, {fatal} error lints");
                for lint in &lints {
                    println!("  [{:?}] {lint}", lint.severity());
                }
                errors += fatal;
            }
        }
    }
    errors
}

fn report(
    title: &'static str,
    key: &'static str,
    graph: &Graph,
    plan: &ExecutionPlan,
    sweeps: Option<&HashMap<NodeId, SweepResult>>,
    device: &DeviceSpec,
    mode: Mode,
) -> Audited {
    let quiet = Audited {
        title,
        key,
        errors: 0,
        mue: None,
        slab_bytes: None,
    };
    if mode == Mode::Access {
        let errors = report_access(title, graph, plan);
        return Audited { errors, ..quiet };
    }
    if mode == Mode::Certify {
        return match certify(graph, plan) {
            Ok(cert) => {
                let widest = cert.waves.iter().map(Vec::len).max().unwrap_or(0);
                println!(
                    "{title}: certified {:#018x} — {} steps in {} waves (widest {widest})",
                    cert.plan_hash,
                    plan.steps.len(),
                    cert.waves.len()
                );
                quiet
            }
            Err(lints) => {
                println!("{title}: NOT certifiable, {} error lints", lints.len());
                for lint in &lints {
                    println!("  [error] {lint}");
                }
                Audited {
                    errors: lints.len(),
                    ..quiet
                }
            }
        };
    }
    let mut analysis = analyze(graph, plan);
    if let Some(sweeps) = sweeps {
        analysis.lints.extend(lint_selection(graph, plan, sweeps));
    }
    // arena coloring rides the audit: any fragmentation divergence between
    // the colored slab and the liveness peak becomes a typed (warning)
    // lint alongside the analyzer's own findings
    let arena_serial = assign_arena(&analysis, ArenaGranularity::Serial);
    let arena_waves = assign_arena(&analysis, ArenaGranularity::Waves);
    analysis.lints.extend(arena_serial.lints.iter().cloned());
    analysis.lints.extend(arena_waves.lints.iter().cloned());
    let errors = analysis.errors().len();
    let movement = audit(graph, plan, device);
    if mode == Mode::Check {
        println!(
            "{title}: {} steps, {errors} errors, {} warnings, static MUE {:.4}",
            plan.steps.len(),
            analysis
                .lints
                .iter()
                .filter(|l| l.severity() == Severity::Warning)
                .count(),
            movement.plan_mue.value,
        );
        for lint in analysis
            .lints
            .iter()
            .filter(|l| l.severity() == Severity::Error)
        {
            println!("  [error] {lint}");
        }
    } else {
        print!("{}", render_report(title, &analysis, &movement, device));
        for (tag, a) in [("serial", &arena_serial), ("waves", &arena_waves)] {
            println!(
                "arena ({tag}): slab {:.1} KiB vs {:.1} KiB peak-resident{}",
                a.slab_bytes(4) as f64 / 1024.0,
                (a.target_words * 4) as f64 / 1024.0,
                if a.lints.is_empty() {
                    " — exact"
                } else {
                    " — FRAGMENTED"
                },
            );
        }
        println!();
    }
    Audited {
        errors,
        mue: Some(movement.plan_mue),
        slab_bytes: Some(arena_serial.slab_bytes(4)),
        ..quiet
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = if std::env::args().any(|a| a == "--access") {
        Mode::Access
    } else if std::env::args().any(|a| a == "--certify") {
        Mode::Certify
    } else if std::env::args().any(|a| a == "--check") {
        Mode::Check
    } else {
        Mode::Full
    };
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    let reference = interp::cached_plan(&dims, interp::PlanKind::EncoderReference)?;
    let fused = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    let epilogue = interp::cached_plan(&dims, interp::PlanKind::EncoderEpilogue)?;
    let decoder = interp::cached_plan(&dims, interp::PlanKind::DecoderFused)?;
    let dec_epilogue = interp::cached_plan(&dims, interp::PlanKind::DecoderEpilogue)?;

    // the recipe: simulator sweeps over the fused graph, SSSP layout
    // selection, lowered to a schedule — audited statically like the rest
    let fwd: Vec<NodeId> = fused.plan.steps.iter().map(|s| s.op).collect();
    let sweeps = sweep_all(
        &SimulatorSource::default(),
        &fused.graph,
        SweepOptions {
            max_configs: Some(2000),
            ..SweepOptions::default()
        },
    )?;
    let sel = select_forward(&fused.graph, &device, &fwd, &sweeps)?;
    let selected = ExecutionPlan::lower(&fused.graph, &sel)?;

    let results = [
        report(
            "Reference (unfused, natural layouts)",
            "encoder-reference",
            &reference.graph,
            &reference.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Fused (natural layouts)",
            "encoder-fused",
            &fused.graph,
            &fused.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Encoder (GEMM-epilogue mega-kernels)",
            "encoder-epilogue",
            &epilogue.graph,
            &epilogue.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Decoder (fused, natural layouts)",
            "decoder-fused",
            &decoder.graph,
            &decoder.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Decoder (GEMM-epilogue mega-kernels)",
            "decoder-epilogue",
            &dec_epilogue.graph,
            &dec_epilogue.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Recipe-selected (simulator sweeps + SSSP layouts)",
            "recipe-selected",
            &fused.graph,
            &selected,
            Some(&sweeps),
            &device,
            mode,
        ),
    ];

    let mut failures = 0usize;
    for r in results.iter().filter(|r| r.errors > 0) {
        eprintln!("{}: {} error-severity lints", r.title, r.errors);
        failures += 1;
    }

    if matches!(mode, Mode::Full | Mode::Check) {
        failures += check_epilogue_invariants(&results);
        failures += check_baseline(&results);
    }
    if failures > 0 {
        std::process::exit(1);
    }
    match mode {
        Mode::Check => {
            println!("all plans are error-clean and at or above the static-MUE baseline")
        }
        Mode::Certify => println!("all plans certified for wave-parallel execution"),
        Mode::Access => println!("all plans earn access certificates at every granularity"),
        Mode::Full => {}
    }
    Ok(())
}

/// The tentpole's static acceptance gate: each GEMM-epilogue plan must
/// show `D` strictly lower with `Q` unchanged (hence strictly higher
/// static MUE) and a strictly smaller serial arena slab than its unfused
/// counterpart. Returns the number of violated invariants.
fn check_epilogue_invariants(results: &[Audited]) -> usize {
    let find = |key: &str| results.iter().find(|r| r.key == key);
    let mut failures = 0usize;
    for (unfused_key, epilogue_key) in [
        ("encoder-fused", "encoder-epilogue"),
        ("decoder-fused", "decoder-epilogue"),
    ] {
        let (Some(f), Some(e)) = (find(unfused_key), find(epilogue_key)) else {
            continue;
        };
        let (Some(fm), Some(em)) = (&f.mue, &e.mue) else {
            continue;
        };
        let (Some(fs), Some(es)) = (f.slab_bytes, e.slab_bytes) else {
            continue;
        };
        println!(
            "{epilogue_key} vs {unfused_key}: Q {:+.1} words, D {:+.1} words, \
             MUE {:.2} → {:.2}, serial slab {:.1} → {:.1} MiB",
            em.q_words - fm.q_words,
            em.d_words - fm.d_words,
            fm.value,
            em.value,
            fs as f64 / (1024.0 * 1024.0),
            es as f64 / (1024.0 * 1024.0),
        );
        for (ok, what) in [
            ((em.q_words - fm.q_words).abs() < 0.5, "Q must be unchanged"),
            (em.d_words < fm.d_words, "D must strictly drop"),
            (em.value > fm.value, "static MUE must strictly rise"),
            (es < fs, "serial arena slab must strictly shrink"),
        ] {
            if !ok {
                eprintln!("FAIL: {epilogue_key} vs {unfused_key}: {what}");
                failures += 1;
            }
        }
    }
    failures
}

/// Compares every baselined plan's static MUE against the checked-in
/// floor. Returns the number of regressions.
fn check_baseline(results: &[Audited]) -> usize {
    let floors = baseline();
    let mut failures = 0usize;
    for r in results {
        let (Some(mue), Some(&floor)) = (&r.mue, floors.get(r.key)) else {
            if !r.key.is_empty() && r.mue.is_some() {
                eprintln!("FAIL: {} has no pinned static-MUE baseline", r.key);
                failures += 1;
            }
            continue;
        };
        if mue.value < floor - BASELINE_TOL {
            eprintln!(
                "FAIL: {} static MUE {:.4} regressed below the pinned baseline {floor:.4}",
                r.key, mue.value
            );
            failures += 1;
        }
    }
    failures
}
