//! Static data-movement audit of execution plans — no kernel ever runs.
//!
//! For each schedule (Reference encoder, Fused encoder, Fused decoder, and
//! a recipe-selected plan lowered from simulator sweeps) this prints the
//! report of `xform_core::analyze`: the dependency DAG's parallel waves,
//! peak resident bytes, per-operator-class byte volumes (Table I style),
//! the plan-level static MUE (`Q/D · B/B̂`), and every lint the analyzer
//! raises. With `--check` it exits non-zero if any plan carries an
//! error-severity lint — CI uses this to fail the build on a lint-dirty
//! canned plan. With `--certify` it runs the full race certifier
//! (`xform_core::sanitize::certify`) on every plan and prints each
//! certificate's fingerprint and wave partition, exiting non-zero if any
//! plan cannot be certified for wave-parallel execution. With `--access`
//! it runs the access-path certifier (`xform_core::access`) at the
//! logical level and at both arena granularities, printing each plan's
//! licensed-step count and every access lint, exiting non-zero if any
//! plan fails certification (error-severity access lints). Strided inner
//! loops are warnings — they demote steps to the checked kernels but do
//! not fail the audit.

use std::collections::HashMap;

use xform_core::access::{certify_access, certify_access_arena};
use xform_core::analyze::{
    analyze, assign_arena, audit, lint_selection, render_report, ArenaGranularity, Severity,
};
use xform_core::plan::ExecutionPlan;
use xform_core::sanitize::certify;
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions, SweepResult};
use xform_dataflow::{EncoderDims, Graph, NodeId};
use xform_gpusim::DeviceSpec;
use xform_transformer::interp;

struct Audited {
    title: &'static str,
    errors: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full rendered report per plan.
    Full,
    /// Lint summary only, non-zero exit on error lints.
    Check,
    /// Race certification, non-zero exit on an uncertifiable plan.
    Certify,
    /// Access-path certification at the logical level and both arena
    /// granularities, non-zero exit on error-severity access lints.
    Access,
}

/// Runs the access-path certifier on one plan: logically and embedded
/// into the arena coloring at both granularities. Returns the number of
/// error lints across the three passes.
fn report_access(title: &str, graph: &Graph, plan: &ExecutionPlan) -> usize {
    let analysis = analyze(graph, plan);
    let mut errors = 0usize;
    let logical = certify_access(graph, plan).map(|c| (c, "logical".to_string()));
    let passes = [ArenaGranularity::Serial, ArenaGranularity::Waves]
        .into_iter()
        .map(|gran| {
            let arena = assign_arena(&analysis, gran);
            certify_access_arena(graph, plan, &arena).map(|c| (c, format!("arena/{gran:?}")))
        });
    for outcome in std::iter::once(logical).chain(passes) {
        match outcome {
            Ok((cert, tag)) => {
                println!(
                    "{title} [{tag}]: certified {:#018x} — {}/{} steps licensed, {} warnings",
                    cert.plan_hash,
                    cert.licensed_steps(),
                    cert.steps.len(),
                    cert.lints.len()
                );
                for lint in &cert.lints {
                    println!("  [warning] {lint}");
                }
            }
            Err(lints) => {
                let fatal = lints
                    .iter()
                    .filter(|l| l.severity() == Severity::Error)
                    .count();
                println!("{title}: access certification FAILED, {fatal} error lints");
                for lint in &lints {
                    println!("  [{:?}] {lint}", lint.severity());
                }
                errors += fatal;
            }
        }
    }
    errors
}

fn report(
    title: &'static str,
    graph: &Graph,
    plan: &ExecutionPlan,
    sweeps: Option<&HashMap<NodeId, SweepResult>>,
    device: &DeviceSpec,
    mode: Mode,
) -> Audited {
    if mode == Mode::Access {
        let errors = report_access(title, graph, plan);
        return Audited { title, errors };
    }
    if mode == Mode::Certify {
        return match certify(graph, plan) {
            Ok(cert) => {
                let widest = cert.waves.iter().map(Vec::len).max().unwrap_or(0);
                println!(
                    "{title}: certified {:#018x} — {} steps in {} waves (widest {widest})",
                    cert.plan_hash,
                    plan.steps.len(),
                    cert.waves.len()
                );
                Audited { title, errors: 0 }
            }
            Err(lints) => {
                println!("{title}: NOT certifiable, {} error lints", lints.len());
                for lint in &lints {
                    println!("  [error] {lint}");
                }
                Audited {
                    title,
                    errors: lints.len(),
                }
            }
        };
    }
    let mut analysis = analyze(graph, plan);
    if let Some(sweeps) = sweeps {
        analysis.lints.extend(lint_selection(graph, plan, sweeps));
    }
    // arena coloring rides the audit: any fragmentation divergence between
    // the colored slab and the liveness peak becomes a typed (warning)
    // lint alongside the analyzer's own findings
    let arena_serial = assign_arena(&analysis, ArenaGranularity::Serial);
    let arena_waves = assign_arena(&analysis, ArenaGranularity::Waves);
    analysis.lints.extend(arena_serial.lints.iter().cloned());
    analysis.lints.extend(arena_waves.lints.iter().cloned());
    let errors = analysis.errors().len();
    if mode == Mode::Check {
        println!(
            "{title}: {} steps, {errors} errors, {} warnings",
            plan.steps.len(),
            analysis
                .lints
                .iter()
                .filter(|l| l.severity() == Severity::Warning)
                .count()
        );
        for lint in analysis
            .lints
            .iter()
            .filter(|l| l.severity() == Severity::Error)
        {
            println!("  [error] {lint}");
        }
    } else {
        let movement = audit(graph, plan, device);
        print!("{}", render_report(title, &analysis, &movement, device));
        for (tag, a) in [("serial", &arena_serial), ("waves", &arena_waves)] {
            println!(
                "arena ({tag}): slab {:.1} KiB vs {:.1} KiB peak-resident{}",
                a.slab_bytes(4) as f64 / 1024.0,
                (a.target_words * 4) as f64 / 1024.0,
                if a.lints.is_empty() {
                    " — exact"
                } else {
                    " — FRAGMENTED"
                },
            );
        }
        println!();
    }
    Audited { title, errors }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = if std::env::args().any(|a| a == "--access") {
        Mode::Access
    } else if std::env::args().any(|a| a == "--certify") {
        Mode::Certify
    } else if std::env::args().any(|a| a == "--check") {
        Mode::Check
    } else {
        Mode::Full
    };
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    let reference = interp::cached_plan(&dims, interp::PlanKind::EncoderReference)?;
    let fused = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    let decoder = interp::cached_plan(&dims, interp::PlanKind::DecoderFused)?;

    // the recipe: simulator sweeps over the fused graph, SSSP layout
    // selection, lowered to a schedule — audited statically like the rest
    let fwd: Vec<NodeId> = fused.plan.steps.iter().map(|s| s.op).collect();
    let sweeps = sweep_all(
        &SimulatorSource::default(),
        &fused.graph,
        SweepOptions {
            max_configs: Some(2000),
            ..SweepOptions::default()
        },
    )?;
    let sel = select_forward(&fused.graph, &device, &fwd, &sweeps)?;
    let selected = ExecutionPlan::lower(&fused.graph, &sel)?;

    let results = [
        report(
            "Reference (unfused, natural layouts)",
            &reference.graph,
            &reference.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Fused (natural layouts)",
            &fused.graph,
            &fused.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Decoder (fused, natural layouts)",
            &decoder.graph,
            &decoder.plan,
            None,
            &device,
            mode,
        ),
        report(
            "Recipe-selected (simulator sweeps + SSSP layouts)",
            &fused.graph,
            &selected,
            Some(&sweeps),
            &device,
            mode,
        ),
    ];

    let dirty: Vec<&Audited> = results.iter().filter(|r| r.errors > 0).collect();
    if !dirty.is_empty() {
        for r in &dirty {
            eprintln!("{}: {} error-severity lints", r.title, r.errors);
        }
        std::process::exit(1);
    }
    match mode {
        Mode::Check => println!("all plans are error-clean"),
        Mode::Certify => println!("all plans certified for wave-parallel execution"),
        Mode::Access => println!("all plans earn access certificates at every granularity"),
        Mode::Full => {}
    }
    Ok(())
}
