//! Static data-movement audit of execution plans — no kernel ever runs.
//!
//! For each schedule (Reference encoder, Fused encoder, Fused decoder, and
//! a recipe-selected plan lowered from simulator sweeps) this prints the
//! report of `xform_core::analyze`: the dependency DAG's parallel waves,
//! peak resident bytes, per-operator-class byte volumes (Table I style),
//! the plan-level static MUE (`Q/D · B/B̂`), and every lint the analyzer
//! raises. The audited set includes the GEMM-epilogue mega-kernel plans,
//! which must beat their unfused counterparts on the static account:
//! `D` strictly lower with `Q` unchanged and a strictly smaller serial
//! arena slab — violations fail the audit. With `--check` it exits
//! non-zero if any plan carries an error-severity lint or any plan's
//! static MUE regresses below the checked-in floor in
//! `crates/bench/baseline_static_mue.txt` — CI uses this to fail the
//! build on a lint-dirty or MUE-regressed canned plan. With `--cache`
//! (composable with `--check`) every plan is additionally pushed through
//! the reuse-distance cache model (`xform_core::cachemodel`) under the
//! modelled device's hierarchy (or the `XFORM_CACHE_GEOM` override):
//! the cache-corrected MUE must be at least the flat one on every plan
//! with `Q` untouched, the GEMM-epilogue plans must stay strictly ahead
//! of their unfused counterparts on the corrected account, and each
//! plan's corrected MUE must hold the floor pinned in
//! `crates/bench/baseline_cache_mue.txt`. With `--json` it writes
//! `BENCH_plan_audit.json` — the machine-readable mirror of the full
//! audit (flat and cache-corrected MUE, predicted DRAM bytes, arena slab
//! bytes, and every lint) — so the static account is tracked across PRs
//! like `plan_profile --json` tracks the measured one. With `--certify`
//! it runs the full race certifier
//! (`xform_core::sanitize::certify`) on every plan and prints each
//! certificate's fingerprint and wave partition, exiting non-zero if any
//! plan cannot be certified for wave-parallel execution. With `--access`
//! it runs the access-path certifier (`xform_core::access`) at the
//! logical level and at both arena granularities, printing each plan's
//! licensed-step count and every access lint, exiting non-zero if any
//! plan fails certification (error-severity access lints). Strided inner
//! loops are warnings — they demote steps to the checked kernels but do
//! not fail the audit.

use std::collections::HashMap;

use xform_bench::cli::{Cli, Flag, CHECK, JSON};
use xform_core::access::{certify_access, certify_access_arena};
use xform_core::analyze::{
    analyze, assign_arena, audit, cross_call_high_water, lint_selection, render_report,
    ArenaGranularity, Severity,
};
use xform_core::cachemodel::{cache_audit, CacheGeometry, CACHE_GEOM_ENV};
use xform_core::plan::ExecutionPlan;
use xform_core::sanitize::{certify, env_setting};
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions, SweepResult};
use xform_dataflow::{EncoderDims, Graph, NodeId};
use xform_gpusim::mue::Mue;
use xform_gpusim::DeviceSpec;
use xform_transformer::interp;

/// Checked-in static-MUE floor per canned plan. `--check` fails when any
/// plan's audited static MUE regresses below its pinned value; re-pin by
/// editing the file when a change legitimately raises a floor.
const BASELINE: &str = include_str!("../../baseline_static_mue.txt");

/// Checked-in cache-corrected MUE floor per canned plan, gated by
/// `--cache --check` under the deterministic device hierarchy.
const CACHE_BASELINE: &str = include_str!("../../baseline_cache_mue.txt");

/// Tolerance (MUE points) when comparing against the pinned baseline,
/// absorbing float-summation noise across platforms.
const BASELINE_TOL: f64 = 0.05;

struct Audited {
    title: &'static str,
    /// Stable key into the static-MUE baseline file; empty when the plan
    /// is not baselined.
    key: &'static str,
    errors: usize,
    steps: usize,
    warnings: usize,
    /// The audited static plan MUE (None in certify/access modes).
    mue: Option<Mue>,
    /// Serial arena slab bytes (None in certify/access modes).
    slab_bytes: Option<u64>,
    /// Every analyzer lint, rendered (kept for the JSON mirror).
    lints: Vec<(Severity, String)>,
    /// Cache-corrected account (None unless `--cache` / `--json`).
    cache: Option<CacheSummary>,
}

/// The cache-corrected slice of one plan's audit.
struct CacheSummary {
    mue: Mue,
    dram_bytes: u64,
    flat_bytes: u64,
    hit_words: Vec<u64>,
    compulsory_words: u64,
    lints: Vec<String>,
}

fn parse_baseline(text: &'static str) -> HashMap<&'static str, f64> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (key, value) = l.split_once(char::is_whitespace)?;
            Some((key, value.trim().parse().ok()?))
        })
        .collect()
}

/// The hierarchy `--cache` audits under: the `XFORM_CACHE_GEOM` override
/// when parsable, else the modelled device's own hierarchy — never the
/// host's, so CI results are machine-independent.
fn audit_geometry(device: &DeviceSpec) -> CacheGeometry {
    env_setting(CACHE_GEOM_ENV)
        .and_then(|v| CacheGeometry::parse(&v))
        .unwrap_or_else(|| CacheGeometry::for_device(device))
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full rendered report per plan.
    Full,
    /// Lint summary only, non-zero exit on error lints.
    Check,
    /// Machine-readable mirror written to `BENCH_plan_audit.json`.
    Json,
    /// Race certification, non-zero exit on an uncertifiable plan.
    Certify,
    /// Access-path certification at the logical level and both arena
    /// granularities, non-zero exit on error-severity access lints.
    Access,
}

/// Runs the access-path certifier on one plan: logically and embedded
/// into the arena coloring at both granularities. Returns the number of
/// error lints across the three passes.
fn report_access(title: &str, graph: &Graph, plan: &ExecutionPlan) -> usize {
    let analysis = analyze(graph, plan);
    let mut errors = 0usize;
    let logical = certify_access(graph, plan).map(|c| (c, "logical".to_string()));
    let passes = [ArenaGranularity::Serial, ArenaGranularity::Waves]
        .into_iter()
        .map(|gran| {
            let arena = assign_arena(&analysis, gran);
            certify_access_arena(graph, plan, &arena).map(|c| (c, format!("arena/{gran:?}")))
        });
    for outcome in std::iter::once(logical).chain(passes) {
        match outcome {
            Ok((cert, tag)) => {
                println!(
                    "{title} [{tag}]: certified {:#018x} — {}/{} steps licensed, {} warnings",
                    cert.plan_hash,
                    cert.licensed_steps(),
                    cert.steps.len(),
                    cert.lints.len()
                );
                for lint in &cert.lints {
                    println!("  [warning] {lint}");
                }
            }
            Err(lints) => {
                let fatal = lints
                    .iter()
                    .filter(|l| l.severity() == Severity::Error)
                    .count();
                println!("{title}: access certification FAILED, {fatal} error lints");
                for lint in &lints {
                    println!("  [{:?}] {lint}", lint.severity());
                }
                errors += fatal;
            }
        }
    }
    errors
}

#[allow(clippy::too_many_arguments)]
fn report(
    title: &'static str,
    key: &'static str,
    graph: &Graph,
    plan: &ExecutionPlan,
    sweeps: Option<&HashMap<NodeId, SweepResult>>,
    device: &DeviceSpec,
    mode: Mode,
    cache_on: bool,
) -> Audited {
    let quiet = Audited {
        title,
        key,
        errors: 0,
        steps: plan.steps.len(),
        warnings: 0,
        mue: None,
        slab_bytes: None,
        lints: Vec::new(),
        cache: None,
    };
    if mode == Mode::Access {
        let errors = report_access(title, graph, plan);
        return Audited { errors, ..quiet };
    }
    if mode == Mode::Certify {
        return match certify(graph, plan) {
            Ok(cert) => {
                let widest = cert.waves.iter().map(Vec::len).max().unwrap_or(0);
                println!(
                    "{title}: certified {:#018x} — {} steps in {} waves (widest {widest})",
                    cert.plan_hash,
                    plan.steps.len(),
                    cert.waves.len()
                );
                quiet
            }
            Err(lints) => {
                println!("{title}: NOT certifiable, {} error lints", lints.len());
                for lint in &lints {
                    println!("  [error] {lint}");
                }
                Audited {
                    errors: lints.len(),
                    ..quiet
                }
            }
        };
    }
    let mut analysis = analyze(graph, plan);
    if let Some(sweeps) = sweeps {
        analysis.lints.extend(lint_selection(graph, plan, sweeps));
    }
    // arena coloring rides the audit: any fragmentation divergence between
    // the colored slab and the liveness peak becomes a typed (warning)
    // lint alongside the analyzer's own findings
    let arena_serial = assign_arena(&analysis, ArenaGranularity::Serial);
    let arena_waves = assign_arena(&analysis, ArenaGranularity::Waves);
    analysis.lints.extend(arena_serial.lints.iter().cloned());
    analysis.lints.extend(arena_waves.lints.iter().cloned());
    let errors = analysis.errors().len();
    let movement = audit(graph, plan, device);
    let cache = cache_on.then(|| {
        let ca = cache_audit(graph, plan, device, &audit_geometry(device));
        analysis.lints.extend(ca.lints.iter().cloned());
        CacheSummary {
            mue: ca.plan_mue,
            dram_bytes: ca.dram_words * device.word_bytes as u64,
            flat_bytes: movement.total_bytes(),
            hit_words: ca.hit_words.clone(),
            compulsory_words: ca.compulsory_words,
            lints: ca.lints.iter().map(|l| l.to_string()).collect(),
        }
    });
    let warnings = analysis
        .lints
        .iter()
        .filter(|l| l.severity() == Severity::Warning)
        .count();
    if mode == Mode::Check {
        println!(
            "{title}: {} steps, {errors} errors, {warnings} warnings, static MUE {:.4}{}",
            plan.steps.len(),
            movement.plan_mue.value,
            cache
                .as_ref()
                .map(|c| format!(
                    ", cache MUE {:.4} ({:.1} MiB DRAM vs {:.1} MiB flat)",
                    c.mue.value,
                    c.dram_bytes as f64 / (1024.0 * 1024.0),
                    c.flat_bytes as f64 / (1024.0 * 1024.0),
                ))
                .unwrap_or_default(),
        );
        for lint in analysis
            .lints
            .iter()
            .filter(|l| l.severity() == Severity::Error)
        {
            println!("  [error] {lint}");
        }
    } else if mode == Mode::Full {
        print!("{}", render_report(title, &analysis, &movement, device));
        for (tag, a) in [("serial", &arena_serial), ("waves", &arena_waves)] {
            println!(
                "arena ({tag}): slab {:.1} KiB vs {:.1} KiB peak-resident{}",
                a.slab_bytes(4) as f64 / 1024.0,
                (a.target_words * 4) as f64 / 1024.0,
                if a.lints.is_empty() {
                    " — exact"
                } else {
                    " — FRAGMENTED"
                },
            );
        }
        if let Some(c) = &cache {
            println!(
                "cache-corrected: MUE {:.4} (flat {:.4}), predicted DRAM {:.1} MiB \
                 of {:.1} MiB flat, hits/level {:?} words, {} compulsory words",
                c.mue.value,
                movement.plan_mue.value,
                c.dram_bytes as f64 / (1024.0 * 1024.0),
                c.flat_bytes as f64 / (1024.0 * 1024.0),
                c.hit_words,
                c.compulsory_words,
            );
            for lint in &c.lints {
                println!("  [cache] {lint}");
            }
        }
        println!();
    }
    Audited {
        errors,
        warnings,
        mue: Some(movement.plan_mue),
        slab_bytes: Some(arena_serial.slab_bytes(4)),
        lints: analysis
            .lints
            .iter()
            .map(|l| (l.severity(), l.to_string()))
            .collect(),
        cache,
        ..quiet
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::parse(
        "plan_audit",
        "static data-movement audit of every canned execution plan (no kernel runs)",
        &[
            CHECK,
            JSON,
            Flag {
                name: "--cache",
                doc: "additionally audit through the reuse-distance cache model",
            },
            Flag {
                name: "--certify",
                doc: "race-certify every plan for wave-parallel execution",
            },
            Flag {
                name: "--access",
                doc: "access-path-certify every plan, logically and at both arena granularities",
            },
        ],
    );
    let mode = if cli.has("--access") {
        Mode::Access
    } else if cli.has("--certify") {
        Mode::Certify
    } else if cli.has("--json") {
        Mode::Json
    } else if cli.has("--check") {
        Mode::Check
    } else {
        Mode::Full
    };
    // the JSON mirror always carries the cache-corrected account
    let cache_on = cli.has("--cache") || mode == Mode::Json;
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    let reference = interp::cached_plan(&dims, interp::PlanKind::EncoderReference)?;
    let fused = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    let epilogue = interp::cached_plan(&dims, interp::PlanKind::EncoderEpilogue)?;
    let decoder = interp::cached_plan(&dims, interp::PlanKind::DecoderFused)?;
    let dec_epilogue = interp::cached_plan(&dims, interp::PlanKind::DecoderEpilogue)?;

    // the streaming-decode plan family: prefill at the full sequence, one
    // project step (token column → q/k/v columns), and one attend step
    // over a cache sized to the full sequence
    let prefill = interp::cached_plan(&dims, interp::PlanKind::DecoderPrefill)?;
    let step_dims = EncoderDims {
        j: 1,
        k: dims.j,
        ..dims
    };
    let project_dims = EncoderDims { j: 1, k: 1, ..dims };
    let project = interp::cached_plan(&project_dims, interp::PlanKind::DecoderStepProject)?;
    let step = interp::cached_plan(&step_dims, interp::PlanKind::DecoderStep)?;

    // the recipe: simulator sweeps over the fused graph, SSSP layout
    // selection, lowered to a schedule — audited statically like the rest
    let fwd: Vec<NodeId> = fused.plan.steps.iter().map(|s| s.op).collect();
    let sweeps = sweep_all(
        &SimulatorSource::default(),
        &fused.graph,
        SweepOptions {
            max_configs: Some(2000),
            ..SweepOptions::default()
        },
    )?;
    let sel = select_forward(&fused.graph, &device, &fwd, &sweeps)?;
    let selected = ExecutionPlan::lower(&fused.graph, &sel)?;

    let results = [
        report(
            "Reference (unfused, natural layouts)",
            "encoder-reference",
            &reference.graph,
            &reference.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Fused (natural layouts)",
            "encoder-fused",
            &fused.graph,
            &fused.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Encoder (GEMM-epilogue mega-kernels)",
            "encoder-epilogue",
            &epilogue.graph,
            &epilogue.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Decoder (fused, natural layouts)",
            "decoder-fused",
            &decoder.graph,
            &decoder.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Decoder (GEMM-epilogue mega-kernels)",
            "decoder-epilogue",
            &dec_epilogue.graph,
            &dec_epilogue.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Recipe-selected (simulator sweeps + SSSP layouts)",
            "recipe-selected",
            &fused.graph,
            &selected,
            Some(&sweeps),
            &device,
            mode,
            cache_on,
        ),
        report(
            "Decoder prefill (forward-only, KV projections saved)",
            "decoder-prefill",
            &prefill.graph,
            &prefill.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Decode step: project (token column -> q/k/v columns)",
            "decoder-step-project",
            &project.graph,
            &project.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
        report(
            "Decode step: attend (one query column over the KV cache)",
            "decoder-step",
            &step.graph,
            &step.plan,
            None,
            &device,
            mode,
            cache_on,
        ),
    ];

    if mode == Mode::Json {
        write_json(&results, &audit_geometry(&device))?;
    }

    let mut failures = 0usize;
    for r in results.iter().filter(|r| r.errors > 0) {
        eprintln!("{}: {} error-severity lints", r.title, r.errors);
        failures += 1;
    }

    if matches!(mode, Mode::Full | Mode::Check | Mode::Json) {
        failures += check_epilogue_invariants(&results);
        failures += check_baseline(&results);
        failures += decode_section(&step.graph, &step.plan, &results, &dims, &device);
        if cache_on {
            failures += check_cache_invariants(&results, mode == Mode::Check);
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    match mode {
        Mode::Check if cache_on => println!(
            "all plans are error-clean, at or above both MUE baselines, \
             and cache-corrected MUE dominates flat"
        ),
        Mode::Check => {
            println!("all plans are error-clean and at or above the static-MUE baseline")
        }
        Mode::Json => println!("wrote BENCH_plan_audit.json"),
        Mode::Certify => println!("all plans certified for wave-parallel execution"),
        Mode::Access => println!("all plans earn access certificates at every granularity"),
        Mode::Full => {}
    }
    Ok(())
}

/// The streaming-decode data-movement signature and the cross-call
/// residency audit:
///
/// * the attend step's static account must be GEMV-like — one query
///   column against the whole resident cache means essentially every
///   moved word (`D`) is weight/cache streaming with a tiny useful
///   minimum (`Q`), the signature that makes decode bandwidth-bound;
///   `--check` gates `D > Q`;
/// * the per-call peak-resident account is extended to the cross-call
///   high-water mark: cache containers are live-in/live-out, so the real
///   steady-state footprint scales their columns to the configured
///   horizon (`XFORM_DECODE_MAX_SEQ`, defaulting to the audited sequence
///   length). The high-water mark must exceed the per-call peak whenever
///   the horizon exceeds the compiled capacity.
///
/// Returns the number of violated invariants.
fn decode_section(
    graph: &Graph,
    plan: &ExecutionPlan,
    results: &[Audited],
    dims: &EncoderDims,
    device: &DeviceSpec,
) -> usize {
    let mut failures = 0usize;
    let find = |key: &str| results.iter().find(|r| r.key == key);
    let (Some(step), Some(prefill)) = (find("decoder-step"), find("decoder-prefill")) else {
        return 0;
    };
    let (Some(m), Some(pm)) = (&step.mue, &prefill.mue) else {
        return 0;
    };
    // a decode step produces `b` tokens; the prefill produces `b·j`
    let step_d_per_token = m.d_words / dims.b as f64;
    let prefill_d_per_token = pm.d_words / (dims.b * dims.j) as f64;
    let ratio = step_d_per_token / prefill_d_per_token.max(1.0);
    println!(
        "\ndecode step (cache capacity {}): Q {:.0} words, D {:.0} words, static MUE {:.4}",
        dims.j, m.q_words, m.d_words, m.value
    );
    println!(
        "decode D/token {:.0} words vs prefill D/token {:.0} words — {ratio:.0}x \
         (GEMV-like signature: every weight and cache word re-streams per generated \
         token, where the prefill amortizes them over {} positions)",
        step_d_per_token, prefill_d_per_token, dims.j
    );
    if step_d_per_token <= 4.0 * prefill_d_per_token {
        eprintln!(
            "FAIL: decoder-step: per-token D must dwarf the prefill's \
             (GEMV-like decode signature)"
        );
        failures += 1;
    }

    let max_seq = xform_core::env::decode_max_seq().unwrap_or(dims.j);
    let analysis = analyze(graph, plan);
    let hw = cross_call_high_water(graph, &analysis, max_seq);
    let mib = |w: u64| w as f64 * device.word_bytes as f64 / (1024.0 * 1024.0);
    println!(
        "decode residency: per-call peak {:.1} MiB ({:.1} MiB KV cache at capacity {}), \
         cross-call high-water {:.1} MiB at max_seq {} ({:.1} MiB cache)",
        mib(hw.peak_words),
        mib(hw.cache_words),
        dims.j,
        mib(hw.high_water_words),
        hw.max_seq,
        mib(hw.cache_words_at_max_seq),
    );
    let _ = plan;
    if hw.cache_words == 0 {
        eprintln!("FAIL: decoder-step: no cache containers in the liveness account");
        failures += 1;
    }
    if hw.max_seq > dims.j && hw.high_water_words <= hw.peak_words {
        eprintln!("FAIL: decoder-step: high-water mark must grow with the residency horizon");
        failures += 1;
    }
    failures
}

/// The tentpole's static acceptance gate: each GEMM-epilogue plan must
/// show `D` strictly lower with `Q` unchanged (hence strictly higher
/// static MUE) and a strictly smaller serial arena slab than its unfused
/// counterpart. Returns the number of violated invariants.
fn check_epilogue_invariants(results: &[Audited]) -> usize {
    let find = |key: &str| results.iter().find(|r| r.key == key);
    let mut failures = 0usize;
    for (unfused_key, epilogue_key) in [
        ("encoder-fused", "encoder-epilogue"),
        ("decoder-fused", "decoder-epilogue"),
    ] {
        let (Some(f), Some(e)) = (find(unfused_key), find(epilogue_key)) else {
            continue;
        };
        let (Some(fm), Some(em)) = (&f.mue, &e.mue) else {
            continue;
        };
        let (Some(fs), Some(es)) = (f.slab_bytes, e.slab_bytes) else {
            continue;
        };
        println!(
            "{epilogue_key} vs {unfused_key}: Q {:+.1} words, D {:+.1} words, \
             MUE {:.2} → {:.2}, serial slab {:.1} → {:.1} MiB",
            em.q_words - fm.q_words,
            em.d_words - fm.d_words,
            fm.value,
            em.value,
            fs as f64 / (1024.0 * 1024.0),
            es as f64 / (1024.0 * 1024.0),
        );
        for (ok, what) in [
            ((em.q_words - fm.q_words).abs() < 0.5, "Q must be unchanged"),
            (em.d_words < fm.d_words, "D must strictly drop"),
            (em.value > fm.value, "static MUE must strictly rise"),
            (es < fs, "serial arena slab must strictly shrink"),
        ] {
            if !ok {
                eprintln!("FAIL: {epilogue_key} vs {unfused_key}: {what}");
                failures += 1;
            }
        }
    }
    failures
}

/// The cache model's acceptance gates, active under `--cache`:
///
/// * every plan's cache-corrected MUE is at least its flat MUE, with `Q`
///   untouched by the correction;
/// * each GEMM-epilogue plan stays *strictly* ahead of its unfused
///   counterpart on the corrected account, still at `ΔQ = 0`;
/// * when `gate_floor`, every baselined plan's corrected MUE holds the
///   floor pinned in `baseline_cache_mue.txt`.
///
/// Returns the number of violations.
fn check_cache_invariants(results: &[Audited], gate_floor: bool) -> usize {
    let mut failures = 0usize;
    for r in results {
        let (Some(flat), Some(c)) = (&r.mue, &r.cache) else {
            continue;
        };
        println!(
            "{}: cache-corrected MUE {:.4} vs flat {:.4}",
            r.key, c.mue.value, flat.value
        );
        for (ok, what) in [
            (
                c.mue.value + 1e-9 >= flat.value,
                "cache-corrected MUE must not drop below flat",
            ),
            (
                (c.mue.q_words - flat.q_words).abs() < 0.5,
                "the cache correction must not touch Q",
            ),
            (
                c.mue.d_words <= flat.d_words + 0.5,
                "the cache correction must not raise D",
            ),
        ] {
            if !ok {
                eprintln!("FAIL: {}: {what}", r.key);
                failures += 1;
            }
        }
    }
    let find = |key: &str| results.iter().find(|r| r.key == key);
    for (unfused_key, epilogue_key) in [
        ("encoder-fused", "encoder-epilogue"),
        ("decoder-fused", "decoder-epilogue"),
    ] {
        let pair = (find(unfused_key), find(epilogue_key));
        let (Some(Some(f)), Some(Some(e))) = (
            pair.0.map(|r| r.cache.as_ref()),
            pair.1.map(|r| r.cache.as_ref()),
        ) else {
            continue;
        };
        for (ok, what) in [
            (
                e.mue.value > f.mue.value,
                "cache-corrected MUE must strictly rise under epilogue fusion",
            ),
            (
                (e.mue.q_words - f.mue.q_words).abs() < 0.5,
                "Q must be unchanged on the corrected account",
            ),
        ] {
            if !ok {
                eprintln!("FAIL: {epilogue_key} vs {unfused_key}: {what}");
                failures += 1;
            }
        }
    }
    if gate_floor {
        let floors = parse_baseline(CACHE_BASELINE);
        for r in results {
            let (Some(c), Some(&floor)) = (&r.cache, floors.get(r.key)) else {
                if !r.key.is_empty() && r.cache.is_some() {
                    eprintln!("FAIL: {} has no pinned cache-MUE baseline", r.key);
                    failures += 1;
                }
                continue;
            };
            if c.mue.value < floor - BASELINE_TOL {
                eprintln!(
                    "FAIL: {} cache-corrected MUE {:.4} regressed below the pinned \
                     baseline {floor:.4}",
                    r.key, c.mue.value
                );
                failures += 1;
            }
        }
    }
    failures
}

/// Compares every baselined plan's static MUE against the checked-in
/// floor. Returns the number of regressions.
fn check_baseline(results: &[Audited]) -> usize {
    let floors = parse_baseline(BASELINE);
    let mut failures = 0usize;
    for r in results {
        let (Some(mue), Some(&floor)) = (&r.mue, floors.get(r.key)) else {
            if !r.key.is_empty() && r.mue.is_some() {
                eprintln!("FAIL: {} has no pinned static-MUE baseline", r.key);
                failures += 1;
            }
            continue;
        };
        if mue.value < floor - BASELINE_TOL {
            eprintln!(
                "FAIL: {} static MUE {:.4} regressed below the pinned baseline {floor:.4}",
                r.key, mue.value
            );
            failures += 1;
        }
    }
    failures
}

fn jstr(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Writes `BENCH_plan_audit.json`: the machine-readable mirror of the
/// static audit — per-plan flat and cache-corrected MUE (value, `Q`,
/// `D`), predicted DRAM and flat bytes, per-level hit words, serial slab
/// bytes, and every lint with its severity — alongside the geometry it
/// was computed under.
fn write_json(
    results: &[Audited],
    geometry: &CacheGeometry,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut out = String::from("{\n  \"bench\": \"plan_audit\",\n");
    out.push_str("  \"geometry\": [");
    let levels: Vec<String> = geometry
        .levels
        .iter()
        .map(|l| {
            format!(
                "{{\"name\": {}, \"size_bytes\": {}, \"line_bytes\": {}, \"assoc\": {}}}",
                jstr(&l.name),
                l.size_bytes,
                l.line_bytes,
                l.assoc
            )
        })
        .collect();
    out.push_str(&levels.join(", "));
    out.push_str("],\n  \"plans\": [\n");
    let plans: Vec<String> = results
        .iter()
        .map(|r| {
            let mut fields = vec![
                format!("      \"key\": {}", jstr(r.key)),
                format!("      \"title\": {}", jstr(r.title)),
                format!("      \"steps\": {}", r.steps),
                format!("      \"errors\": {}", r.errors),
                format!("      \"warnings\": {}", r.warnings),
            ];
            if let Some(m) = &r.mue {
                fields.push(format!(
                    "      \"static_mue\": {{\"value\": {:.6}, \"q_words\": {:.1}, \"d_words\": {:.1}}}",
                    m.value, m.q_words, m.d_words
                ));
            }
            if let Some(s) = r.slab_bytes {
                fields.push(format!("      \"serial_slab_bytes\": {s}"));
            }
            if let Some(c) = &r.cache {
                fields.push(format!(
                    "      \"cache_mue\": {{\"value\": {:.6}, \"q_words\": {:.1}, \"d_words\": {:.1}}}",
                    c.mue.value, c.mue.q_words, c.mue.d_words
                ));
                fields.push(format!("      \"predicted_dram_bytes\": {}", c.dram_bytes));
                fields.push(format!("      \"flat_bytes\": {}", c.flat_bytes));
                let hits: Vec<String> = c.hit_words.iter().map(u64::to_string).collect();
                fields.push(format!("      \"hit_words\": [{}]", hits.join(", ")));
                fields.push(format!(
                    "      \"compulsory_words\": {}",
                    c.compulsory_words
                ));
            }
            let lints: Vec<String> = r
                .lints
                .iter()
                .map(|(sev, l)| {
                    format!(
                        "{{\"severity\": {}, \"message\": {}}}",
                        jstr(&format!("{sev:?}")),
                        jstr(l)
                    )
                })
                .collect();
            fields.push(format!("      \"lints\": [{}]", lints.join(", ")));
            format!("    {{\n{}\n    }}", fields.join(",\n"))
        })
        .collect();
    out.push_str(&plans.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_plan_audit.json", out)?;
    Ok(())
}
