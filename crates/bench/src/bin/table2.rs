//! Table II reproduction: algebraic fusion of the self-attention Q/K/V
//! input projections (unfused / QK fused / QKV fused), in µs.

use xform_bench::TablePrinter;
use xform_core::algebraic::qkv_variants;
use xform_dataflow::EncoderDims;
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = qkv_variants(&DeviceSpec::v100(), &EncoderDims::bert_large());
    println!("Table II: algebraic fusion for MHA Q/K/V (µs)\n");
    let mut t = TablePrinter::new(&["", "Unfused", "QK fused", "QKV fused"]);
    let paper_fwd = [345.0, 294.0, 275.0];
    let paper_bwd = [342.0, 312.0, 291.0];
    t.row(&[
        "Forward (ours)".into(),
        format!("{:.0}", rows[0].forward_us),
        format!("{:.0}", rows[1].forward_us),
        format!("{:.0}", rows[2].forward_us),
    ]);
    t.row(&[
        "Forward (paper)".into(),
        format!("{:.0}", paper_fwd[0]),
        format!("{:.0}", paper_fwd[1]),
        format!("{:.0}", paper_fwd[2]),
    ]);
    t.row(&[
        "Backward (ours)".into(),
        format!("{:.0}", rows[0].backward_us),
        format!("{:.0}", rows[1].backward_us),
        format!("{:.0}", rows[2].backward_us),
    ]);
    t.row(&[
        "Backward (paper)".into(),
        format!("{:.0}", paper_bwd[0]),
        format!("{:.0}", paper_bwd[1]),
        format!("{:.0}", paper_bwd[2]),
    ]);
    t.print();
    println!(
        "\nFully fusing the batched MMM performs best, as in the paper (Sec. IV-D).\n\
         Note: our backward row prices the dX *and* dW stacked GEMMs, so its\n\
         magnitude is ≈2× the paper's backward row; the ordering is what matters."
    );
    Ok(())
}
