//! The recipe on *real measurements*: swap the V100 model for the
//! [`xform_core::cpusource::CpuSource`], which times actual CPU kernels,
//! and run the identical fuse → sweep → select pipeline (the hardware-
//! agnosticity claim of Sec. VIII). Uses small dimensions — real
//! measurement is a million times slower than the analytical model.

use xform_core::cpusource::CpuSource;
use xform_core::recipe::{optimize_encoder_with, RecipeOptions};
use xform_core::sweep::SweepOptions;
use xform_dataflow::EncoderDims;
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims {
        b: 2,
        j: 24,
        k: 24,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    };
    let source = CpuSource::new(3);
    println!(
        "running the recipe against real CPU measurements (dims: i={}, j={}, b={})",
        dims.i, dims.j, dims.b
    );
    let plan = optimize_encoder_with(
        &source,
        &DeviceSpec::v100(), // device spec only prices transpose bookkeeping
        &dims,
        &RecipeOptions {
            sweep: SweepOptions {
                max_configs: Some(96),
                ..SweepOptions::default()
            },
            per_op_overhead_us: 0.0,
        },
    )?;
    println!("\nselected configuration (measured µs per kernel):");
    for r in &plan.rows {
        if r.forward {
            println!(
                "  {:<10} {:>9.1} µs   in {:<6} out {:<6} vec {:?}",
                r.name, r.time_us, r.config.in_spec, r.config.out_spec, r.config.vector_axis
            );
        }
    }
    println!(
        "\nforward {:.2} ms, backward {:.2} ms (measured on this machine)",
        plan.forward_us / 1000.0,
        plan.backward_us / 1000.0
    );
    println!(
        "selection {:.1}% above the per-op measured optimum — the same global\n\
         selection machinery, driven by real numbers instead of a model.",
        100.0 * (plan.selection.total_us / plan.selection.per_op_best_us - 1.0)
    );
    Ok(())
}
