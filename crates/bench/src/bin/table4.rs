//! Table IV reproduction: multi-head attention forward/backward time under
//! TensorFlow+XLA, PyTorch, cuDNN's MHA path, and our implementation.

use xform_bench::{
    mha_backward_kernels, mha_backward_ops_unfused, mha_forward_kernels, mha_forward_ops_unfused,
    TablePrinter,
};
use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::framework::{cudnn_mha_time_ms, execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_large();
    let unfused = build::encoder(&dims).graph;

    let sum_ms = |profile: &xform_gpusim::framework::ExecutionProfile, names: &[&str]| -> f64 {
        names
            .iter()
            .map(|n| profile.op_time_us(n).unwrap_or(0.0) + 0.0)
            .sum::<f64>()
            / 1000.0
    };
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch())?;
    let xla = execute(&unfused, &device, &FrameworkPolicy::tf_xla())?;
    let (cudnn_fwd, cudnn_bwd) = cudnn_mha_time_ms(&device, &dims);

    let ours = optimize_encoder(&device, &dims, &RecipeOptions::default())?;
    let ours_ms = |names: &[&str]| -> f64 {
        names
            .iter()
            .map(|n| ours.op_time_us(n).unwrap_or(0.0))
            .sum::<f64>()
            / 1000.0
    };

    println!("Table IV: multi-head attention performance for BERT (ms)\n");
    let mut t = TablePrinter::new(&["", "TF+XLA", "PT", "cuDNN", "Ours"]);
    t.row(&[
        "Forward (ours)".into(),
        format!("{:.2}", sum_ms(&xla, mha_forward_ops_unfused())),
        format!("{:.2}", sum_ms(&pt, mha_forward_ops_unfused())),
        format!("{cudnn_fwd:.0}"),
        format!("{:.2}", ours_ms(mha_forward_kernels())),
    ]);
    t.row(&[
        "Forward (paper)".into(),
        "1.60".into(),
        "1.90".into(),
        "131".into(),
        "1.25".into(),
    ]);
    t.row(&[
        "Backward (ours)".into(),
        format!("{:.2}", sum_ms(&xla, mha_backward_ops_unfused())),
        format!("{:.2}", sum_ms(&pt, mha_backward_ops_unfused())),
        format!("{cudnn_bwd:.0}"),
        format!("{:.2}", ours_ms(mha_backward_kernels())),
    ]);
    t.row(&[
        "Backward (paper)".into(),
        "2.25".into(),
        "2.77".into(),
        "652".into(),
        "1.86".into(),
    ]);
    t.print();
    println!(
        "\nShape check: ours < TF+XLA < PT ≪ cuDNN, as in the paper.\n\
         (XLA here runs its element-wise fusion but not algebraic QKV fusion;\n\
         the cuDNN path is dominated by its softmax kernel-launch storm.)"
    );
    Ok(())
}
