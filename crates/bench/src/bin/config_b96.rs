//! Sec. VI-C's alternative configuration: B = 96, L = 128, with the layout
//! selection retuned. Paper: PyTorch 18.43 ms, DeepSpeed 16.19 ms, ours
//! 16.22 ms for one encoder layer fwd+bwd.

use xform_bench::TablePrinter;
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::framework::{execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_b96();

    let unfused = build::encoder(&dims).graph;
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch())?;

    let mut ds_graph = build::encoder(&dims).graph;
    apply_plan(&mut ds_graph, &encoder_fusion_plan())?;
    let ds = execute(&ds_graph, &device, &FrameworkPolicy::deepspeed())?;

    // retuned: the recipe re-runs its sweeps and selection at these dims
    let ours = optimize_encoder(&device, &dims, &RecipeOptions::default())?;

    println!("Sec. VI-C configuration: B=96, L=128 (ms, fwd+bwd)\n");
    let mut t = TablePrinter::new(&["", "PT", "DS", "Ours"]);
    t.row(&[
        "fwd+bwd (ours)".into(),
        format!("{:.2}", pt.total_us / 1000.0),
        format!("{:.2}", ds.total_us / 1000.0),
        format!("{:.2}", ours.total_us() / 1000.0),
    ]);
    t.row(&[
        "fwd+bwd (paper)".into(),
        "18.43".into(),
        "16.19".into(),
        "16.22".into(),
    ]);
    t.print();
    println!(
        "\nShape check: ours clearly beats PyTorch after retuning, as the paper\n\
         reports. Deviation: the paper's implementation only *matched* DeepSpeed\n\
         here (16.22 vs 16.19 ms) because its layout-selection algorithm handled\n\
         this configuration less well; our model keeps the exhaustive-selection\n\
         advantage, so we come out ahead of the DeepSpeed model instead."
    );
    Ok(())
}
