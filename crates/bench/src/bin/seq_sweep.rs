//! Sequence-length sweep: how the memory-bound share of encoder training
//! grows with L. Attention's O(L²) softmax/dropout traffic is exactly the
//! bottleneck that later work (e.g. FlashAttention) attacked — the paper's
//! analysis predicts it.

use xform_bench::TablePrinter;
use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::{EncoderDims, OpClass};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    println!("Memory-bound share vs sequence length (BERT-large encoder)\n");
    let mut t = TablePrinter::new(&[
        "L",
        "total ms",
        "attention-softmax ms",
        "memory-bound %",
        "movement Mwords",
    ]);
    for l in [128usize, 256, 512, 1024] {
        let dims = EncoderDims {
            j: l,
            k: l,
            ..EncoderDims::bert_large()
        };
        let plan = optimize_encoder(&device, &dims, &RecipeOptions::default())?;
        let sm: f64 = plan
            .rows
            .iter()
            .filter(|r| r.name == "SM" || r.name == "BS")
            .map(|r| r.time_us)
            .sum();
        let mem: f64 = plan
            .rows
            .iter()
            .filter(|r| r.class != OpClass::TensorContraction)
            .map(|r| r.time_us)
            .sum();
        t.row(&[
            l.to_string(),
            format!("{:.2}", plan.total_us() / 1000.0),
            format!("{:.2}", sm / 1000.0),
            format!(
                "{:.1}",
                100.0 * mem / plan.rows.iter().map(|r| r.time_us).sum::<f64>()
            ),
            format!("{:.0}", plan.graph.total_io_words() as f64 / 1e6),
        ]);
    }
    t.print();
    println!(
        "\nThe fused softmax/dropout pair (SM + BS) grows quadratically with L and\n\
         dominates the memory-bound time at long sequences — the attention\n\
         memory wall this paper diagnosed and FlashAttention later removed."
    );
    Ok(())
}
