//! Fig. 5 reproduction: runtime distributions over all layout /
//! vectorization / warp-axis configurations for every fused element-wise
//! and statistical-normalization kernel.

use xform_bench::Distribution;
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::sweep::{sweep_op, SimulatorSource, SweepOptions};
use xform_dataflow::{build, EncoderDims, OpClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let mut g = build::encoder(&dims).graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    let src = SimulatorSource::default();

    println!("Fig. 5: fused-kernel performance over all configurations (ms)\n");
    println!(
        "{:<8} {:>9} {:>10} {:>9}  distribution (log bins)",
        "kernel", "best", "worst", "median"
    );
    for op in g.ops() {
        let node = g.op(op).expect("live");
        if node.kind.class() == OpClass::TensorContraction {
            continue;
        }
        let r = sweep_op(&src, &g, op, SweepOptions::default())?;
        let times_ms: Vec<f64> = r.times_us.iter().map(|t| t / 1000.0).collect();
        let d = Distribution::from_times(&times_ms);
        println!(
            "{:<8} {:>9.3} {:>10.3} {:>9.3}  {}",
            node.name,
            d.best,
            d.worst,
            d.median,
            d.sparkline(&times_ms, 24)
        );
    }
    println!(
        "\nPaper reference (best/worst ms): AIB 0.065/5.3, SM 0.402/81.3, BRD 0.176/6.6,\n\
         BDRLN 0.071/3.5, BS 0.396/45.4, BSB 0.033/0.86, EBSB 0.034/0.88.\n\
         The long tails come from uncoalesced layouts — a bad configuration is\n\
         orders of magnitude worse, which is why exhaustive search matters (Sec. V-B)."
    );
    Ok(())
}
