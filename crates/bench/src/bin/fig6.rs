//! Fig. 6 / Sec. VI-A reproduction: the configuration-selection graph and
//! its shortest path, plus the "within 4% of per-op best" check.

use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::EncoderDims;
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let ours = optimize_encoder(
        &device,
        &EncoderDims::bert_large(),
        &RecipeOptions::default(),
    )?;
    let sel = &ours.selection;

    println!("Configuration selection (Sec. VI-A): shortest path through the layout graph\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "operator", "in layout", "out layout", "µs"
    );
    for ((op, in_l, out_l), (_, timing)) in sel.layouts.iter().zip(&sel.per_op) {
        let name = ours
            .graph
            .op(*op)
            .map(|o| o.name.clone())
            .unwrap_or_default();
        println!("{name:<10} {in_l:>12} {out_l:>12} {:>10.0}", timing.time_us);
    }
    println!(
        "\nselected forward path: {:.0} µs with {} explicit transposes",
        sel.total_us, sel.transposes
    );
    println!(
        "sum of unconstrained per-op bests: {:.0} µs → selection is {:.1}% above it\n\
         (paper: within 4% of the per-op lower bound)",
        sel.per_op_best_us,
        100.0 * (sel.total_us / sel.per_op_best_us - 1.0)
    );
    println!(
        "\nExample selection sub-graph (Fig. 6's QKV-fused → AIB slice):\n\
         each data container expands into one node per layout; operator edges\n\
         carry the best sweep time for that (in, out) pair; transpose edges\n\
         allow layout changes mid-graph.\n\n\
           source ─0─> [qkv_raw @ shbj] ──QKV──> [qq @ phbj] ──AIB──> ...\n\
                  ─0─> [qkv_raw @ sbhj] ──QKV──> [qq @ pbhj] ──AIB──> ...\n\
                  ─0─> [qkv_raw @ hjsb] ──QKV──> [qq @ hjpb] ──AIB──> ...\n\
                            │ transpose edges between layout rows │"
    );
    Ok(())
}
