//! Model-size scaling study: the recipe across BERT-base, BERT-large and
//! GPT-scale blocks. The paper projects its 1.30× speedup onto training
//! bills (>$85k saved on BERT, ~$3.6M and >120 MWh on GPT-3); this binary
//! reproduces those projections with our measured speedups.

use xform_bench::TablePrinter;
use xform_core::recipe::{optimize_encoder, RecipeOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::framework::{execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let configs: Vec<(&str, EncoderDims)> = vec![
        (
            "BERT-base",
            EncoderDims {
                b: 8,
                j: 512,
                k: 512,
                h: 12,
                p: 64,
                i: 768,
                u: 3072,
            },
        ),
        ("BERT-large", EncoderDims::bert_large()),
        (
            "GPT-2 XL-ish",
            EncoderDims {
                b: 8,
                j: 1024,
                k: 1024,
                h: 25,
                p: 64,
                i: 1600,
                u: 6400,
            },
        ),
        (
            "GPT-3-ish",
            EncoderDims {
                b: 4,
                j: 2048,
                k: 2048,
                h: 96,
                p: 128,
                i: 12288,
                u: 49152,
            },
        ),
    ];
    let device = DeviceSpec::v100();
    println!("The recipe across model scales (one encoder layer, fwd+bwd)\n");
    let mut t = TablePrinter::new(&[
        "model",
        "hidden",
        "PT model ms",
        "ours ms",
        "speedup",
        "movement −%",
    ]);
    let mut last_speedup = 1.0;
    for (name, dims) in &configs {
        let pt = execute(
            &build::encoder(dims).graph,
            &device,
            &FrameworkPolicy::pytorch(),
        )?;
        let ours = optimize_encoder(&device, dims, &RecipeOptions::default())?;
        let speedup = pt.total_us / ours.total_us();
        last_speedup = speedup;
        t.row(&[
            name.to_string(),
            dims.i.to_string(),
            format!("{:.2}", pt.total_us / 1000.0),
            format!("{:.2}", ours.total_us() / 1000.0),
            format!("{speedup:.2}×"),
            format!("{:.1}", ours.movement_reduction_pct),
        ]);
    }
    t.print();
    // the paper's cost projection (GPT-3 training ≈ $12M, >120 MWh at stake)
    let gpt3_cost_musd = 12.0;
    let saved = gpt3_cost_musd * (1.0 - 1.0 / last_speedup);
    println!(
        "\nprojection: at a ${gpt3_cost_musd}M GPT-3 training cost, a {last_speedup:.2}× layer\n\
         speedup saves ≈ ${saved:.1}M (the paper projects $3.6M from its 1.30×).\n\
         The speedup holds — and the data-movement share grows — as models scale,\n\
         because attention and normalization traffic grow with L² and N."
    );
    Ok(())
}
