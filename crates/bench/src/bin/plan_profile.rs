//! Runtime plan profiling and profile-guided re-selection, end to end.
//!
//! Runs the fused encoder schedule through `xform_core::profile`'s
//! [`PlanProfiler`] and prints the measured mirror of the static
//! data-movement audit, Table-III style: per step, the measured
//! wall-clock time, the bytes the step moves (identical to
//! `xform_core::analyze::audit`'s accounting), achieved bandwidth, and
//! measured vs. static MUE — then per-operator-class totals, the
//! wave-parallel occupancy/imbalance of the certified plan, and finally
//! the profile-guided re-selection loop: profile the natural plan,
//! re-run SSSP selection from the measured timings
//! (`xform_core::profile::ProfiledSource`), and report the adopted
//! plan's measured improvement.
//!
//! The binary also runs under a counting global allocator and reports the
//! arena interpreter's steady-state heap discipline: slab/scratch/stats
//! bytes per granularity and heap allocations per `forward_into` call
//! after warmup, which must be **zero**.
//!
//! With `--check` it runs a compact smoke pass and exits non-zero unless
//! every interpretable step records nonzero measured bytes, every
//! measured MUE lies in (0, 100], the re-selected winner's measured
//! total is no worse than the natural plan's, and the arena's
//! steady-state allocation count is zero — CI runs this to keep the
//! profiler (and the arena's zero-allocation claim) honest.

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xform_core::analyze::audit;
use xform_core::cpusource::CpuSource;
use xform_core::plan::{random_externals, ExecOptions};
use xform_core::profile::{
    profile_plan, profile_plan_parallel, reselect, CountingAlloc, PlanProfiler, Reselection,
};
use xform_core::sanitize::ParallelOptions;
use xform_core::sweep::SweepOptions;
use xform_dataflow::{EncoderDims, Graph, OpClass};
use xform_gpusim::DeviceSpec;
use xform_tensor::{Shape, Tensor};
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::interp;
use xform_transformer::params::EncoderWeights;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const REPS: usize = 5;
const STEADY_CALLS: usize = 20;

struct ArenaRow {
    tag: &'static str,
    threads: usize,
    slab_bytes: usize,
    scratch_bytes: usize,
    stats_bytes: usize,
    /// Heap events (alloc + dealloc + realloc) across `STEADY_CALLS`
    /// post-warmup `forward_into` calls. Must be zero.
    events: u64,
}

/// Runs the fused encoder through the zero-allocation arena entry point
/// at both granularities and measures steady-state heap traffic.
fn arena_rows() -> Result<Vec<ArenaRow>, Box<dyn std::error::Error>> {
    let dims = dims();
    let layer = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let mut rng = StdRng::seed_from_u64(3);
    let w = EncoderWeights::init(&dims, &mut rng);
    let shape = Shape::from_spec("ibj", &dims.size_table())?;
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let mut y = Tensor::from_vec(shape, vec![0.0; dims.i * dims.b * dims.j])?;
    let mut rows = Vec::new();
    for (tag, threads) in [("serial", 1usize), ("waves", 4)] {
        let opts = ExecOptions {
            threads,
            seed: 7,
            ..ExecOptions::default()
        };
        let arena = interp::cached_arena(
            &dims,
            interp::PlanKind::EncoderFused,
            interp::granularity_for(threads),
        )?
        .ok_or("arena did not compile for the fused encoder plan")?;
        // warmup: plan + arena caches, worker pool, env-var resolution
        layer.forward_into(&x, &w, &opts, &mut y)?;
        layer.forward_into(&x, &w, &opts, &mut y)?;
        let before = ALLOC.events();
        for _ in 0..STEADY_CALLS {
            layer.forward_into(&x, &w, &opts, &mut y)?;
        }
        rows.push(ArenaRow {
            tag,
            threads,
            slab_bytes: arena.slab_bytes(),
            scratch_bytes: arena.scratch_words() * 4,
            stats_bytes: arena.stats_words() * 4,
            events: ALLOC.events() - before,
        });
    }
    Ok(rows)
}

/// One row of the checked-vs-unchecked bandwidth scoreboard.
struct BandwidthRow {
    kernel: &'static str,
    /// Bytes one kernel call moves (reads + writes, audit accounting).
    bytes: usize,
    checked_us: f64,
    unchecked_us: f64,
}

impl BandwidthRow {
    fn checked_gbps(&self) -> f64 {
        self.bytes as f64 / 1e3 / self.checked_us
    }
    fn unchecked_gbps(&self) -> f64 {
        self.bytes as f64 / 1e3 / self.unchecked_us
    }
    fn speedup(&self) -> f64 {
        self.checked_us / self.unchecked_us
    }
}

/// Times `f` and returns the minimum wall-clock microseconds over `reps`
/// runs (one warmup call first).
fn min_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// The achieved-bandwidth scoreboard: the memory-bound normalization
/// kernels (softmax, layernorm) on a unit-stride lane geometry — exactly
/// the pattern the access certifier licenses — timed through the checked
/// kernels and their certified unchecked twins on identical buffers.
fn bandwidth_rows() -> Vec<BandwidthRow> {
    use rand::distributions::Distribution;
    use xform_tensor::into_ops::{
        layernorm_into, layernorm_into_dispatch, softmax_scaled_into, softmax_scaled_into_dispatch,
        LaneGeom,
    };
    const BW_REPS: usize = 9;
    let lane = LaneGeom {
        pre: 2048,
        len: 512,
        post: 1,
    };
    let n = lane.elements();
    let mut rng = StdRng::seed_from_u64(5);
    let dist = Uniform::new(-2.0f32, 2.0);
    let x: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let gamma: Vec<f32> = (0..lane.len).map(|_| dist.sample(&mut rng)).collect();
    let beta: Vec<f32> = (0..lane.len).map(|_| dist.sample(&mut rng)).collect();
    let mut out = vec![0.0f32; n];
    let mut mean = vec![0.0f32; lane.lanes()];
    let mut inv_std = vec![0.0f32; lane.lanes()];

    let sm_checked = min_us(BW_REPS, || {
        softmax_scaled_into(&x, 0.125, lane, &mut out);
        std::hint::black_box(&out);
    });
    let sm_unchecked = min_us(BW_REPS, || {
        assert!(softmax_scaled_into_dispatch(&x, 0.125, lane, &mut out));
        std::hint::black_box(&out);
    });
    let ln_checked = min_us(BW_REPS, || {
        layernorm_into(&x, &gamma, &beta, lane, &mut out, &mut mean, &mut inv_std);
        std::hint::black_box(&out);
    });
    let ln_unchecked = min_us(BW_REPS, || {
        assert!(layernorm_into_dispatch(
            &x,
            &gamma,
            &beta,
            lane,
            &mut out,
            &mut mean,
            &mut inv_std
        ));
        std::hint::black_box(&out);
    });
    vec![
        BandwidthRow {
            kernel: "softmax (SM class)",
            bytes: 2 * n * 4,
            checked_us: sm_checked,
            unchecked_us: sm_unchecked,
        },
        BandwidthRow {
            kernel: "layernorm (LN class)",
            bytes: (2 * n + 2 * lane.len + 2 * lane.lanes()) * 4,
            checked_us: ln_checked,
            unchecked_us: ln_unchecked,
        },
    ]
}

fn dims() -> EncoderDims {
    EncoderDims {
        b: 2,
        j: 24,
        k: 24,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    }
}

fn class_tag(c: OpClass) -> &'static str {
    match c {
        OpClass::TensorContraction => "tc",
        OpClass::StatisticalNormalization => "norm",
        OpClass::Elementwise => "elem",
    }
}

fn reselection(
    graph: &Graph,
    plan: &xform_core::plan::ExecutionPlan,
    opts: &ExecOptions,
) -> xform_tensor::Result<Reselection> {
    let fwd: Vec<_> = plan.steps.iter().map(|s| s.op).collect();
    let fallback = CpuSource::new(2);
    reselect(
        graph,
        plan,
        &fwd,
        &DeviceSpec::v100(),
        &fallback,
        SweepOptions {
            max_configs: Some(48),
            ..SweepOptions::default()
        },
        opts,
        REPS,
        11,
    )
}

fn full() -> Result<(), Box<dyn std::error::Error>> {
    let dims = dims();
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    println!(
        "runtime profile of the fused encoder plan, dims i={} j={} b={} h={} p={} u={} \
         ({REPS} reps, min per step)",
        dims.i, dims.j, dims.b, dims.h, dims.p, dims.u
    );

    let opts = ExecOptions::default();
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &opts, REPS)?;
    let static_audit = audit(&pf.graph, &pf.plan, &DeviceSpec::v100());

    println!(
        "\nhost peak bandwidth {:.2} GB/s (calibrated); measured vs static MUE per step:",
        prof.peak_bytes_per_us * 1e6 / 1e9
    );
    println!(
        "  {:>4}  {:<26} {:>5} {:>9} {:>9} {:>8} {:>5} {:>8} {:>8}",
        "step", "kernel", "class", "time µs", "KiB", "GB/s", "bw%", "MUE", "static"
    );
    for s in prof.steps() {
        let m = prof.measured_mue(s);
        let st = static_audit
            .per_step
            .get(s.step)
            .and_then(|a| a.mue.as_ref())
            .map_or_else(|| "—".into(), |m| format!("{:8.1}", m.value));
        println!(
            "  {:>4}  {:<26} {:>5} {:>9.1} {:>9.1} {:>8.2} {:>5.1} {:>8.1} {:>8}",
            s.step,
            s.name,
            class_tag(s.class),
            s.time_us,
            s.moved_bytes() as f64 / 1024.0,
            s.achieved_bytes_per_us() * 1e6 / 1e9,
            m.bandwidth_frac * 100.0,
            m.value,
            st,
        );
    }
    let pm = prof.plan_mue();
    println!(
        "\nplan totals: {:.1} µs summed, {:.1} KiB moved, measured MUE {:.1} \
         (static MUE {:.1} over {} modelled steps)",
        prof.total_time_us(),
        prof.total_bytes() as f64 / 1024.0,
        pm.value,
        static_audit.plan_mue.value,
        static_audit.modelled_steps,
    );

    println!("\nper-class totals (measured):");
    for c in prof.per_class() {
        println!(
            "  {:<5} {:>2} steps  {:>9.1} µs  {:>9.1} KiB  MUE {:>5.1}",
            class_tag(c.class),
            c.steps,
            c.time_us,
            c.moved_bytes as f64 / 1024.0,
            c.mue.value,
        );
    }

    // --- wave-parallel occupancy of the certified plan ---
    let popts = ParallelOptions {
        threads: 4,
        ..ParallelOptions::default()
    };
    let par = profile_plan_parallel(&pf.graph, &pf.plan, &pf.cert, &base, &opts, &popts, REPS)?;
    println!(
        "\nwave-parallel occupancy at {} threads (wall {:.1} µs across {} waves):",
        popts.threads,
        par.parallel_wall_us().unwrap_or(0.0),
        par.waves().count(),
    );
    for w in par.waves() {
        println!(
            "  wave {:>2}: {:>2} step(s) on {} worker(s)  wall {:>8.1} µs  \
             occupancy {:>5.1}%  imbalance {:.2}x",
            w.wave,
            w.steps.len(),
            w.workers,
            w.wall_us,
            par.wave_occupancy(w) * 100.0,
            par.wave_imbalance(w),
        );
    }

    // --- arena steady-state heap discipline ---
    println!("\narena execution (fused encoder, zero-allocation steady state):");
    println!(
        "  {:<7} {:>7} {:>9} {:>11} {:>9} {:>12}",
        "granul.", "threads", "slab KiB", "scratch KiB", "stats KiB", "allocs/call"
    );
    for r in arena_rows()? {
        println!(
            "  {:<7} {:>7} {:>9.1} {:>11.1} {:>9.1} {:>12.2}",
            r.tag,
            r.threads,
            r.slab_bytes as f64 / 1024.0,
            r.scratch_bytes as f64 / 1024.0,
            r.stats_bytes as f64 / 1024.0,
            r.events as f64 / STEADY_CALLS as f64,
        );
    }

    // --- certified-unchecked bandwidth scoreboard ---
    println!(
        "\nachieved bandwidth, checked kernels vs certified unchecked twins \
         (unit-stride lanes, min of reps):"
    );
    println!(
        "  {:<22} {:>9} {:>13} {:>15} {:>8}",
        "kernel", "MiB", "checked GB/s", "unchecked GB/s", "speedup"
    );
    for r in bandwidth_rows() {
        println!(
            "  {:<22} {:>9.1} {:>13.2} {:>15.2} {:>7.2}x",
            r.kernel,
            r.bytes as f64 / (1024.0 * 1024.0),
            r.checked_gbps(),
            r.unchecked_gbps(),
            r.speedup(),
        );
    }

    // --- profile-guided re-selection ---
    println!("\nprofile-guided re-selection (CPU-measured fallback, sweep ≤48 configs/op):");
    let r = reselection(&pf.graph, &pf.plan, &opts)?;
    println!("  natural plan     {:>9.1} µs measured", r.natural_us());
    println!(
        "  re-selected plan {:>9.1} µs measured ({} transposes, {:.1} µs modeled)",
        r.reselected_us(),
        r.selection.transposes,
        r.selection.total_us,
    );
    println!(
        "  adopted: {} — measured improvement {:.1}% (total {:.1} µs, never worse than natural)",
        if r.adopted { "re-selected" } else { "natural" },
        r.improvement_pct(),
        r.best_us(),
    );
    assert!(
        r.best_us() <= r.natural_us(),
        "adopted plan measured worse than natural"
    );
    Ok(())
}

/// Returns the failures found while smoke-checking a profiled plan.
fn check_profile(tag: &str, prof: &PlanProfiler, expect_steps: usize) -> Vec<String> {
    let mut bad = Vec::new();
    if prof.steps().count() != expect_steps {
        bad.push(format!(
            "{tag}: profiled {} of {expect_steps} steps",
            prof.steps().count()
        ));
    }
    for s in prof.steps() {
        if s.interpretable && s.moved_bytes() == 0 {
            bad.push(format!("{tag}: step {} ({}) moved 0 bytes", s.step, s.name));
        }
        if s.time_us <= 0.0 {
            bad.push(format!("{tag}: step {} ({}) has no time", s.step, s.name));
        }
        let m = prof.measured_mue(s);
        if !(m.value > 0.0 && m.value <= 100.0) {
            bad.push(format!(
                "{tag}: step {} ({}) measured MUE {} outside (0, 100]",
                s.step, s.name, m.value
            ));
        }
        if !s.footprint_matches() {
            bad.push(format!(
                "{tag}: step {} ({}) footprint {} words vs audited {}",
                s.step,
                s.name,
                s.footprint_words,
                s.moved_words()
            ));
        }
    }
    bad
}

fn check() -> Result<(), Box<dyn std::error::Error>> {
    let dims = dims();
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    let opts = ExecOptions::default();
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &opts, 2)?;
    let mut bad = check_profile("serial", &prof, pf.plan.steps.len());

    let popts = ParallelOptions {
        threads: 4,
        ..ParallelOptions::default()
    };
    let par = profile_plan_parallel(&pf.graph, &pf.plan, &pf.cert, &base, &opts, &popts, 2)?;
    bad.extend(check_profile("parallel", &par, pf.plan.steps.len()));
    if par.waves().count() != pf.cert.waves.len() {
        bad.push(format!(
            "parallel: profiled {} of {} waves",
            par.waves().count(),
            pf.cert.waves.len()
        ));
    }

    let r = reselection(&pf.graph, &pf.plan, &opts)?;
    if r.best_us() > r.natural_us() {
        bad.push(format!(
            "re-selection: adopted {:.1} µs is worse than natural {:.1} µs",
            r.best_us(),
            r.natural_us()
        ));
    }

    // the certified unchecked twins must not regress: at least one
    // memory-bound kernel class must achieve strictly higher bandwidth
    // than its checked fallback on the licensed (unit-stride) pattern
    let rows = bandwidth_rows();
    if !rows.iter().any(|r| r.unchecked_gbps() > r.checked_gbps()) {
        bad.push(format!(
            "unchecked twins: no kernel class beat its checked fallback ({})",
            rows.iter()
                .map(|r| format!("{} {:.2}x", r.kernel, r.speedup()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    // the arena's zero-allocation steady state is a hard gate
    for row in arena_rows()? {
        if row.events != 0 {
            bad.push(format!(
                "arena ({}, {} threads): {} heap event(s) across {STEADY_CALLS} \
                 steady-state forward_into calls (must be 0)",
                row.tag, row.threads, row.events
            ));
        }
    }

    if bad.is_empty() {
        println!(
            "plan_profile --check: OK — {} steps profiled serial+parallel, \
             re-selected total {:.1} µs ≤ natural {:.1} µs, \
             0 steady-state arena allocations",
            pf.plan.steps.len(),
            r.best_us(),
            r.natural_us()
        );
        Ok(())
    } else {
        for b in &bad {
            eprintln!("FAIL: {b}");
        }
        Err(format!("{} profiler check(s) failed", bad.len()).into())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = std::env::args().nth(1);
    match mode.as_deref() {
        Some("--check") => check(),
        None => full(),
        Some(other) => Err(format!("unknown flag {other}; expected --check or nothing").into()),
    }
}
