//! Runtime plan profiling and profile-guided re-selection, end to end.
//!
//! Runs the fused encoder schedule through `xform_core::profile`'s
//! [`PlanProfiler`] and prints the measured mirror of the static
//! data-movement audit, Table-III style: per step, the measured
//! wall-clock time, the bytes the step moves (identical to
//! `xform_core::analyze::audit`'s accounting), achieved bandwidth, and
//! measured vs. static MUE — then per-operator-class totals, the
//! wave-parallel occupancy/imbalance of the certified plan, and finally
//! the profile-guided re-selection loop: profile the natural plan,
//! re-run SSSP selection from the measured timings
//! (`xform_core::profile::ProfiledSource`), and report the adopted
//! plan's measured improvement.
//!
//! The binary also runs under a counting global allocator and reports the
//! arena interpreter's steady-state heap discipline: slab/scratch/stats
//! bytes per granularity and heap allocations per `forward_into` call
//! after warmup, which must be **zero**.
//!
//! The binary also duels each element-wise-fused plan against its
//! GEMM-epilogue mega-kernel counterpart on several traffic shapes and
//! reports measured bytes, wall-clock, and which plan a measured
//! re-selection would adopt per shape.
//!
//! Re-selection runs under the cache-aware cost model
//! (`xform_core::selection::CostModel::CacheAware`): SSSP edge weights
//! carry each candidate layout's predicted DRAM overfetch, and the
//! adoption duel keeps the result honest against the natural plan.
//!
//! The binary also cross-validates the static cache model
//! (`xform_core::cachemodel`) empirically: on fused-encoder shapes sized
//! so the softmax interim and the layernorm lanes each occupy ~3× the
//! validation hierarchy's LLC, the model's predicted DRAM bytes must
//! bracket the profiler's footprint-checked measured bytes within 30%.
//!
//! With `--check` it runs a compact smoke pass and exits non-zero unless
//! every interpretable step records nonzero measured bytes, every
//! measured MUE lies in (0, 100], the re-selected winner's measured
//! total is no worse than the natural plan's, the epilogue plans move
//! strictly fewer measured bytes than their unfused counterparts without
//! being slower, the DRAM cross-validation holds on both the softmax and
//! layernorm classes, and the arena's steady-state allocation count is
//! zero — CI runs this to keep the profiler (and the arena's
//! zero-allocation claim) honest. With `--json` it writes
//! `BENCH_plan_profile.json`, the machine-readable mirror tracked across
//! PRs.

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xform_bench::cli::{Cli, CHECK, JSON};
use xform_core::analyze::audit;
use xform_core::cachemodel::{trace_plan, CacheGeometry, CACHE_GEOM_ENV};
use xform_core::cpusource::CpuSource;
use xform_core::plan::{random_externals, ExecOptions};
use xform_core::profile::{
    profile_plan, profile_plan_parallel, reselect_cost, CountingAlloc, PlanProfiler, Reselection,
};
use xform_core::sanitize::{env_setting, ParallelOptions};
use xform_core::selection::CostModel;
use xform_core::sweep::SweepOptions;
use xform_dataflow::{EncoderDims, Graph, OpClass};
use xform_gpusim::DeviceSpec;
use xform_tensor::{Shape, Tensor};
use xform_transformer::decode::{DecodeOptions, DecodeSession, Sampling};
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::interp;
use xform_transformer::model::{BlockKind, ModelConfig, TransformerModel};
use xform_transformer::params::EncoderWeights;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const REPS: usize = 5;
const STEADY_CALLS: usize = 20;

struct ArenaRow {
    tag: &'static str,
    threads: usize,
    slab_bytes: usize,
    scratch_bytes: usize,
    stats_bytes: usize,
    /// Heap events (alloc + dealloc + realloc) across `STEADY_CALLS`
    /// post-warmup `forward_into` calls. Must be zero.
    events: u64,
}

/// Runs an encoder executor through the zero-allocation arena entry
/// point at both granularities and measures steady-state heap traffic.
fn arena_rows(
    executor: Executor,
    kind: interp::PlanKind,
) -> Result<Vec<ArenaRow>, Box<dyn std::error::Error>> {
    let dims = dims();
    let layer = EncoderLayer::new(dims, executor, 0.0);
    let mut rng = StdRng::seed_from_u64(3);
    let w = EncoderWeights::init(&dims, &mut rng);
    let shape = Shape::from_spec("ibj", &dims.size_table())?;
    let x = Tensor::random(shape.clone(), &Uniform::new(-1.0, 1.0), &mut rng);
    let mut y = Tensor::from_vec(shape, vec![0.0; dims.i * dims.b * dims.j])?;
    let mut rows = Vec::new();
    for (tag, threads) in [("serial", 1usize), ("waves", 4)] {
        let opts = ExecOptions::builder().threads(threads).seed(7).build();
        let arena = interp::cached_arena(&dims, kind, interp::granularity_for(threads))?
            .ok_or("arena did not compile for the encoder plan")?;
        // warmup: plan + arena caches, worker pool, env-var resolution
        layer.forward_into(&x, &w, &opts, &mut y)?;
        layer.forward_into(&x, &w, &opts, &mut y)?;
        let before = ALLOC.events();
        for _ in 0..STEADY_CALLS {
            layer.forward_into(&x, &w, &opts, &mut y)?;
        }
        rows.push(ArenaRow {
            tag,
            threads,
            slab_bytes: arena.slab_bytes(),
            scratch_bytes: arena.scratch_words() * 4,
            stats_bytes: arena.stats_words() * 4,
            events: ALLOC.events() - before,
        });
    }
    Ok(rows)
}

/// One row of the checked-vs-unchecked bandwidth scoreboard.
struct BandwidthRow {
    kernel: &'static str,
    /// Bytes one kernel call moves (reads + writes, audit accounting).
    bytes: usize,
    checked_us: f64,
    unchecked_us: f64,
}

impl BandwidthRow {
    fn checked_gbps(&self) -> f64 {
        self.bytes as f64 / 1e3 / self.checked_us
    }
    fn unchecked_gbps(&self) -> f64 {
        self.bytes as f64 / 1e3 / self.unchecked_us
    }
    fn speedup(&self) -> f64 {
        self.checked_us / self.unchecked_us
    }
}

/// Times `f` and returns the minimum wall-clock microseconds over `reps`
/// runs (one warmup call first).
fn min_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// The achieved-bandwidth scoreboard: the memory-bound normalization
/// kernels (softmax, layernorm) on a unit-stride lane geometry — exactly
/// the pattern the access certifier licenses — timed through the checked
/// kernels and their certified unchecked twins on identical buffers.
fn bandwidth_rows() -> Vec<BandwidthRow> {
    use rand::distributions::Distribution;
    use xform_tensor::into_ops::{
        layernorm_into, layernorm_into_dispatch, softmax_scaled_into, softmax_scaled_into_dispatch,
        LaneGeom,
    };
    const BW_REPS: usize = 9;
    let lane = LaneGeom {
        pre: 2048,
        len: 512,
        post: 1,
    };
    let n = lane.elements();
    let mut rng = StdRng::seed_from_u64(5);
    let dist = Uniform::new(-2.0f32, 2.0);
    let x: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    let gamma: Vec<f32> = (0..lane.len).map(|_| dist.sample(&mut rng)).collect();
    let beta: Vec<f32> = (0..lane.len).map(|_| dist.sample(&mut rng)).collect();
    let mut out = vec![0.0f32; n];
    let mut mean = vec![0.0f32; lane.lanes()];
    let mut inv_std = vec![0.0f32; lane.lanes()];

    let sm_checked = min_us(BW_REPS, || {
        softmax_scaled_into(&x, 0.125, lane, &mut out);
        std::hint::black_box(&out);
    });
    let sm_unchecked = min_us(BW_REPS, || {
        assert!(softmax_scaled_into_dispatch(&x, 0.125, lane, &mut out));
        std::hint::black_box(&out);
    });
    let ln_checked = min_us(BW_REPS, || {
        layernorm_into(&x, &gamma, &beta, lane, &mut out, &mut mean, &mut inv_std);
        std::hint::black_box(&out);
    });
    let ln_unchecked = min_us(BW_REPS, || {
        assert!(layernorm_into_dispatch(
            &x,
            &gamma,
            &beta,
            lane,
            &mut out,
            &mut mean,
            &mut inv_std
        ));
        std::hint::black_box(&out);
    });
    vec![
        BandwidthRow {
            kernel: "softmax (SM class)",
            bytes: 2 * n * 4,
            checked_us: sm_checked,
            unchecked_us: sm_unchecked,
        },
        BandwidthRow {
            kernel: "layernorm (LN class)",
            bytes: (2 * n + 2 * lane.len + 2 * lane.lanes()) * 4,
            checked_us: ln_checked,
            unchecked_us: ln_unchecked,
        },
    ]
}

fn dims() -> EncoderDims {
    EncoderDims {
        b: 2,
        j: 24,
        k: 24,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    }
}

/// Relative tolerance for the predicted-vs-measured DRAM-byte gate: on
/// shapes whose per-step working sets dwarf the hierarchy, the cache
/// model's predicted DRAM traffic must land within 30% of the profiler's
/// measured byte account.
const DRAM_VALIDATION_TOL: f64 = 0.30;

/// Reference hierarchy the DRAM cross-validation sizes its shapes
/// against (overridable via `XFORM_CACHE_GEOM`). Deliberately compact —
/// the validation shapes are sized to ~3× its LLC so every lane misses
/// by footprint alone, and a small LLC keeps those shapes cheap on CI.
const VALIDATION_GEOM: &str = "16k:64:4,128k:64:8,512k:64:16";

fn validation_geometry() -> CacheGeometry {
    env_setting(CACHE_GEOM_ENV)
        .and_then(|v| CacheGeometry::parse(&v))
        .or_else(|| CacheGeometry::parse(VALIDATION_GEOM))
        .expect("the built-in validation geometry spec parses")
}

/// One predicted-vs-measured DRAM row of the cache-model
/// cross-validation.
struct DramRow {
    shape: String,
    step: String,
    predicted_bytes: u64,
    measured_bytes: u64,
    time_us: f64,
}

impl DramRow {
    fn ratio(&self) -> f64 {
        self.predicted_bytes as f64 / self.measured_bytes.max(1) as f64
    }
}

/// Cross-validates the static cache model against the runtime profiler
/// on the memory-bound normalization steps (softmax, layernorm): two
/// fused-encoder shapes are sized so the softmax interim (resp. the
/// layernorm lanes) occupy ~3× the validation LLC — every reference then
/// misses by footprint alone, predicted DRAM converges to the flat byte
/// account, and the profiler's footprint-checked measured bytes must
/// bracket it within [`DRAM_VALIDATION_TOL`]. Steps whose traffic does
/// not dwarf the hierarchy (at least 4× the LLC) are reported but not
/// gated: residency makes their DRAM traffic legitimately smaller than
/// their byte account.
fn dram_rows(reps: usize) -> Result<(Vec<DramRow>, u64), Box<dyn std::error::Error>> {
    let geom = validation_geometry();
    let llc = geom.largest_bytes().max(64 * 1024);
    // target words per lane footprint: 3× LLC at 4-byte words
    let target = (3 * llc / 4) as f64;
    // softmax interim is b·h·j·k words (b = h = 2, k = j): 4j² ≥ target
    let j = (target / 4.0).sqrt().ceil() as usize;
    // layernorm lanes are b·j·i words (i = h·p): grow the batch
    let (lj, li) = (64usize, 128usize);
    let lb = (target / (lj * li) as f64).ceil() as usize;
    let shapes = [
        (
            format!("softmax-bound j={j}"),
            EncoderDims {
                b: 2,
                j,
                k: j,
                h: 2,
                p: 8,
                i: 16,
                u: 32,
            },
        ),
        (
            format!("layernorm-bound b={lb}"),
            EncoderDims {
                b: lb,
                j: lj,
                k: lj,
                h: 2,
                p: 64,
                i: li,
                u: 32,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (tag, d) in shapes {
        let pf = interp::cached_plan(&d, interp::PlanKind::EncoderFused)?;
        let base = random_externals(&pf.graph, &pf.plan, 11)?;
        let prof = profile_plan(&pf.graph, &pf.plan, &base, &ExecOptions::default(), reps)?;
        let traffic = trace_plan(&pf.graph, &pf.plan, &geom, 4);
        for s in prof
            .steps()
            .filter(|s| s.class == OpClass::StatisticalNormalization)
        {
            rows.push(DramRow {
                shape: tag.clone(),
                step: s.name.clone(),
                predicted_bytes: traffic.per_step[s.step].dram_words() * 4,
                measured_bytes: s.moved_bytes(),
                time_us: s.time_us,
            });
        }
    }
    Ok((rows, llc))
}

fn print_dram_rows(rows: &[DramRow], llc: u64) {
    println!(
        "\ncache-model DRAM cross-validation (LLC {:.0} KiB, gate ±{:.0}% where measured ≥ 4× LLC):",
        llc as f64 / 1024.0,
        DRAM_VALIDATION_TOL * 100.0
    );
    println!(
        "  {:<22} {:<8} {:>14} {:>13} {:>9} {:>7}",
        "shape", "step", "predicted KiB", "measured KiB", "time µs", "ratio"
    );
    for r in rows {
        println!(
            "  {:<22} {:<8} {:>14.1} {:>13.1} {:>9.1} {:>6.2}{}",
            r.shape,
            r.step,
            r.predicted_bytes as f64 / 1024.0,
            r.measured_bytes as f64 / 1024.0,
            r.time_us,
            r.ratio(),
            if r.measured_bytes >= 4 * llc {
                ""
            } else {
                "  (resident, ungated)"
            },
        );
    }
}

fn class_tag(c: OpClass) -> &'static str {
    match c {
        OpClass::TensorContraction => "tc",
        OpClass::StatisticalNormalization => "norm",
        OpClass::Elementwise => "elem",
    }
}

/// Profile-guided re-selection under the cache-aware cost model: SSSP
/// edge weights carry the predicted DRAM overfetch of each candidate
/// layout under the modelled device's hierarchy, so the selection
/// prefers cache-resident layouts. The adoption duel downstream still
/// measures both plans and keeps the natural one unless the re-selected
/// plan is measurably no worse.
fn reselection(
    graph: &Graph,
    plan: &xform_core::plan::ExecutionPlan,
    opts: &ExecOptions,
) -> xform_tensor::Result<Reselection> {
    let fwd: Vec<_> = plan.steps.iter().map(|s| s.op).collect();
    let fallback = CpuSource::new(2);
    let device = DeviceSpec::v100();
    let cost = CostModel::CacheAware(CacheGeometry::for_device(&device));
    reselect_cost(
        graph,
        plan,
        &fwd,
        &device,
        &fallback,
        SweepOptions {
            max_configs: Some(48),
            ..SweepOptions::default()
        },
        opts,
        REPS,
        11,
        &cost,
    )
}

/// One side's measured totals in a fused-vs-epilogue duel.
struct PlanSide {
    us: f64,
    bytes: u64,
    mue: f64,
}

/// Head-to-head of an element-wise-fused plan and its GEMM-epilogue
/// counterpart, measured through the serial profiler on one traffic
/// shape.
struct Duel {
    shape: String,
    unfused: PlanSide,
    epilogue: PlanSide,
}

impl Duel {
    /// Plan-level re-selection: adopt whichever plan measured faster on
    /// this traffic shape.
    fn adopted(&self) -> &'static str {
        if self.epilogue.us <= self.unfused.us {
            "epilogue"
        } else {
            "unfused"
        }
    }
}

/// Wall-clock slack the epilogue plan is allowed in `--check` before the
/// "not slower" gate trips — absorbs scheduler noise on CI runners; the
/// bytes gate has no slack because the byte account is deterministic.
const DUEL_TIME_SLACK: f64 = 1.15;

fn profile_side(
    dims: &EncoderDims,
    kind: interp::PlanKind,
    reps: usize,
) -> Result<PlanSide, Box<dyn std::error::Error>> {
    let pf = interp::cached_plan(dims, kind)?;
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &ExecOptions::default(), reps)?;
    Ok(PlanSide {
        us: prof.total_time_us(),
        bytes: prof.total_bytes(),
        mue: prof.plan_mue().value,
    })
}

/// Profiles both canned fused/epilogue pairs on two traffic shapes: the
/// small profile dims and a sequence-length-dominant shape where the
/// eliminated attention interim dominates the byte account.
fn duels(reps: usize) -> Result<Vec<Duel>, Box<dyn std::error::Error>> {
    let small = dims();
    let seq = EncoderDims {
        b: 2,
        j: 96,
        k: 96,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    };
    let mut out = Vec::new();
    for (tag, d) in [("j=24", &small), ("j=96", &seq)] {
        for (side, unfused, epilogue) in [
            (
                "encoder",
                interp::PlanKind::EncoderFused,
                interp::PlanKind::EncoderEpilogue,
            ),
            (
                "decoder",
                interp::PlanKind::DecoderFused,
                interp::PlanKind::DecoderEpilogue,
            ),
        ] {
            out.push(Duel {
                shape: format!("{side} {tag}"),
                unfused: profile_side(d, unfused, reps)?,
                epilogue: profile_side(d, epilogue, reps)?,
            });
        }
    }
    Ok(out)
}

fn print_duels(rows: &[Duel]) {
    println!(
        "\nGEMM-epilogue mega-kernels vs element-wise fusion (measured, serial, min of reps):"
    );
    println!(
        "  {:<14} {:>12} {:>12} {:>11} {:>11} {:>9} {:>9}",
        "shape", "unfused KiB", "epilogue KiB", "unfused µs", "epilog µs", "MUE", "adopted"
    );
    for r in rows {
        println!(
            "  {:<14} {:>12.1} {:>12.1} {:>11.1} {:>11.1} {:>4.1}→{:<4.1} {:>9}",
            r.shape,
            r.unfused.bytes as f64 / 1024.0,
            r.epilogue.bytes as f64 / 1024.0,
            r.unfused.us,
            r.epilogue.us,
            r.unfused.mue,
            r.epilogue.mue,
            r.adopted(),
        );
    }
}

/// Measured throughput and heap discipline of the streaming KV-cache
/// decode path.
struct DecodeBench {
    /// Prompt tokens across the batch.
    prompt_tokens: usize,
    /// Measured decode steps (each yields `b` tokens).
    steps: usize,
    batch: usize,
    /// Prefill wall-clock, min over reps — includes the bucket's arena
    /// compilation, which a fresh session pays once.
    prefill_us: f64,
    /// Wall-clock of `steps` steady-state sample+advance pairs.
    decode_us: f64,
    /// Heap events per decoded step across the measured window — the
    /// zero-allocation gate.
    allocs_per_step: f64,
    /// Resident arena bytes (cache slabs + projection arena).
    resident_bytes: usize,
    /// Measured MUE of the attend-step plan at the session's bucket
    /// capacity.
    step_mue: f64,
}

impl DecodeBench {
    fn prefill_tokens_per_s(&self) -> f64 {
        self.prompt_tokens as f64 / (self.prefill_us / 1e6)
    }
    fn decode_tokens_per_s(&self) -> f64 {
        (self.steps * self.batch) as f64 / (self.decode_us / 1e6)
    }
}

/// Profiles streaming decode on a small decoder stack at the profile
/// dims: prefill wall-clock (fresh session per rep), steady-state decode
/// wall-clock and heap events over a window that stays inside one cache
/// bucket, and the measured MUE of the `DecoderStep` plan.
fn decode_bench(reps: usize) -> Result<DecodeBench, Box<dyn std::error::Error>> {
    const PROMPT: usize = 4;
    const STEPS: usize = 16;
    let d = dims();
    let cfg = ModelConfig {
        dims: d,
        layers: 2,
        vocab: 32,
        block: BlockKind::Decoder,
        dropout_p: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(17);
    let model = TransformerModel::init(cfg, &mut rng)?;
    let prompt: Vec<Vec<usize>> = (0..d.b)
        .map(|b| (0..PROMPT).map(|j| (b * 7 + j * 3) % cfg.vocab).collect())
        .collect();

    // prefill: a session prefills exactly once, so time a fresh one per rep
    let mut prefill_us = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut sess = DecodeSession::new(&model, DecodeOptions::default())?;
        let t = std::time::Instant::now();
        sess.prefill(&prompt)?;
        prefill_us = prefill_us.min(t.elapsed().as_secs_f64() * 1e6);
    }

    // steady-state decode: warm two steps, then measure inside the bucket
    let mut sess = DecodeSession::new(&model, DecodeOptions::default())?;
    sess.prefill(&prompt)?;
    let sampling = Sampling::Temperature {
        temperature: 0.9,
        top_k: Some(8),
    };
    let mut tokens = vec![0usize; d.b];
    for _ in 0..2 {
        sess.sample(sampling, &mut tokens)?;
        sess.advance(&tokens)?;
    }
    assert!(
        sess.len() + STEPS <= sess.capacity() && sess.len() + STEPS <= d.j,
        "measured decode window must stay inside one bucket"
    );
    let before = ALLOC.events();
    let t = std::time::Instant::now();
    for _ in 0..STEPS {
        sess.sample(sampling, &mut tokens)?;
        sess.advance(&tokens)?;
    }
    let decode_us = t.elapsed().as_secs_f64() * 1e6;
    let allocs_per_step = (ALLOC.events() - before) as f64 / STEPS as f64;

    // measured MUE of the attend-step plan at the session's bucket shape
    let step_dims = EncoderDims {
        b: d.b,
        j: 1,
        k: sess.capacity(),
        h: d.h,
        p: d.p,
        i: d.i,
        u: d.u,
    };
    let pf = interp::cached_plan(&step_dims, interp::PlanKind::DecoderStep)?;
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &ExecOptions::default(), reps)?;

    Ok(DecodeBench {
        prompt_tokens: PROMPT * d.b,
        steps: STEPS,
        batch: d.b,
        prefill_us,
        decode_us,
        allocs_per_step,
        resident_bytes: sess.resident_bytes(),
        step_mue: prof.plan_mue().value,
    })
}

fn print_decode(b: &DecodeBench) {
    println!(
        "\nstreaming decode (prompt {} tokens, {} steady-state steps × batch {}):",
        b.prompt_tokens, b.steps, b.batch
    );
    println!(
        "  prefill  {:>9.1} µs ({:>9.0} tokens/s, incl. bucket compile)",
        b.prefill_us,
        b.prefill_tokens_per_s()
    );
    println!(
        "  decode   {:>9.1} µs ({:>9.0} tokens/s, {:.1} µs/step)",
        b.decode_us,
        b.decode_tokens_per_s(),
        b.decode_us / b.steps as f64
    );
    println!(
        "  resident {:>9.1} KiB arena slabs, {:.2} allocs/step, \
         attend-step measured MUE {:.1}",
        b.resident_bytes as f64 / 1024.0,
        b.allocs_per_step,
        b.step_mue
    );
}

fn full() -> Result<(), Box<dyn std::error::Error>> {
    let dims = dims();
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    println!(
        "runtime profile of the fused encoder plan, dims i={} j={} b={} h={} p={} u={} \
         ({REPS} reps, min per step)",
        dims.i, dims.j, dims.b, dims.h, dims.p, dims.u
    );

    let opts = ExecOptions::default();
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &opts, REPS)?;
    let static_audit = audit(&pf.graph, &pf.plan, &DeviceSpec::v100());

    println!(
        "\nhost peak bandwidth {:.2} GB/s (calibrated); measured vs static MUE per step:",
        prof.peak_bytes_per_us * 1e6 / 1e9
    );
    println!(
        "  {:>4}  {:<26} {:>5} {:>9} {:>9} {:>8} {:>5} {:>8} {:>8}",
        "step", "kernel", "class", "time µs", "KiB", "GB/s", "bw%", "MUE", "static"
    );
    for s in prof.steps() {
        let m = prof.measured_mue(s);
        let st = static_audit
            .per_step
            .get(s.step)
            .and_then(|a| a.mue.as_ref())
            .map_or_else(|| "—".into(), |m| format!("{:8.1}", m.value));
        println!(
            "  {:>4}  {:<26} {:>5} {:>9.1} {:>9.1} {:>8.2} {:>5.1} {:>8.1} {:>8}",
            s.step,
            s.name,
            class_tag(s.class),
            s.time_us,
            s.moved_bytes() as f64 / 1024.0,
            s.achieved_bytes_per_us() * 1e6 / 1e9,
            m.bandwidth_frac * 100.0,
            m.value,
            st,
        );
    }
    let pm = prof.plan_mue();
    println!(
        "\nplan totals: {:.1} µs summed, {:.1} KiB moved, measured MUE {:.1} \
         (static MUE {:.1} over {} modelled steps)",
        prof.total_time_us(),
        prof.total_bytes() as f64 / 1024.0,
        pm.value,
        static_audit.plan_mue.value,
        static_audit.modelled_steps,
    );

    println!("\nper-class totals (measured):");
    for c in prof.per_class() {
        println!(
            "  {:<5} {:>2} steps  {:>9.1} µs  {:>9.1} KiB  MUE {:>5.1}",
            class_tag(c.class),
            c.steps,
            c.time_us,
            c.moved_bytes as f64 / 1024.0,
            c.mue.value,
        );
    }

    // --- wave-parallel occupancy of the certified plan ---
    let popts = ParallelOptions {
        threads: 4,
        ..ParallelOptions::default()
    };
    let par = profile_plan_parallel(&pf.graph, &pf.plan, &pf.cert, &base, &opts, &popts, REPS)?;
    println!(
        "\nwave-parallel occupancy at {} threads (wall {:.1} µs across {} waves):",
        popts.threads,
        par.parallel_wall_us().unwrap_or(0.0),
        par.waves().count(),
    );
    for w in par.waves() {
        println!(
            "  wave {:>2}: {:>2} step(s) on {} worker(s)  wall {:>8.1} µs  \
             occupancy {:>5.1}%  imbalance {:.2}x",
            w.wave,
            w.steps.len(),
            w.workers,
            w.wall_us,
            par.wave_occupancy(w) * 100.0,
            par.wave_imbalance(w),
        );
    }

    // --- fused vs epilogue, measured ---
    print_duels(&duels(REPS)?);

    // --- streaming decode throughput ---
    print_decode(&decode_bench(REPS)?);

    // --- cache-model DRAM cross-validation ---
    let (rows, llc) = dram_rows(REPS)?;
    print_dram_rows(&rows, llc);

    // --- arena steady-state heap discipline ---
    println!("\narena execution (fused encoder, zero-allocation steady state):");
    println!(
        "  {:<7} {:>7} {:>9} {:>11} {:>9} {:>12}",
        "granul.", "threads", "slab KiB", "scratch KiB", "stats KiB", "allocs/call"
    );
    for r in arena_rows(Executor::Fused, interp::PlanKind::EncoderFused)? {
        println!(
            "  {:<7} {:>7} {:>9.1} {:>11.1} {:>9.1} {:>12.2}",
            r.tag,
            r.threads,
            r.slab_bytes as f64 / 1024.0,
            r.scratch_bytes as f64 / 1024.0,
            r.stats_bytes as f64 / 1024.0,
            r.events as f64 / STEADY_CALLS as f64,
        );
    }

    // --- certified-unchecked bandwidth scoreboard ---
    println!(
        "\nachieved bandwidth, checked kernels vs certified unchecked twins \
         (unit-stride lanes, min of reps):"
    );
    println!(
        "  {:<22} {:>9} {:>13} {:>15} {:>8}",
        "kernel", "MiB", "checked GB/s", "unchecked GB/s", "speedup"
    );
    for r in bandwidth_rows() {
        println!(
            "  {:<22} {:>9.1} {:>13.2} {:>15.2} {:>7.2}x",
            r.kernel,
            r.bytes as f64 / (1024.0 * 1024.0),
            r.checked_gbps(),
            r.unchecked_gbps(),
            r.speedup(),
        );
    }

    // --- profile-guided re-selection ---
    println!("\nprofile-guided re-selection (CPU-measured fallback, sweep ≤48 configs/op):");
    let r = reselection(&pf.graph, &pf.plan, &opts)?;
    println!("  natural plan     {:>9.1} µs measured", r.natural_us());
    println!(
        "  re-selected plan {:>9.1} µs measured ({} transposes, {:.1} µs modeled)",
        r.reselected_us(),
        r.selection.transposes,
        r.selection.total_us,
    );
    println!(
        "  adopted: {} — measured improvement {:.1}% (total {:.1} µs, never worse than natural)",
        if r.adopted { "re-selected" } else { "natural" },
        r.improvement_pct(),
        r.best_us(),
    );
    assert!(
        r.best_us() <= r.natural_us(),
        "adopted plan measured worse than natural"
    );
    Ok(())
}

/// Returns the failures found while smoke-checking a profiled plan.
fn check_profile(tag: &str, prof: &PlanProfiler, expect_steps: usize) -> Vec<String> {
    let mut bad = Vec::new();
    if prof.steps().count() != expect_steps {
        bad.push(format!(
            "{tag}: profiled {} of {expect_steps} steps",
            prof.steps().count()
        ));
    }
    for s in prof.steps() {
        if s.interpretable && s.moved_bytes() == 0 {
            bad.push(format!("{tag}: step {} ({}) moved 0 bytes", s.step, s.name));
        }
        if s.time_us <= 0.0 {
            bad.push(format!("{tag}: step {} ({}) has no time", s.step, s.name));
        }
        let m = prof.measured_mue(s);
        if !(m.value > 0.0 && m.value <= 100.0) {
            bad.push(format!(
                "{tag}: step {} ({}) measured MUE {} outside (0, 100]",
                s.step, s.name, m.value
            ));
        }
        if !s.footprint_matches() {
            bad.push(format!(
                "{tag}: step {} ({}) footprint {} words vs audited {}",
                s.step,
                s.name,
                s.footprint_words,
                s.moved_words()
            ));
        }
    }
    bad
}

fn check() -> Result<(), Box<dyn std::error::Error>> {
    let dims = dims();
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    let opts = ExecOptions::default();
    let base = random_externals(&pf.graph, &pf.plan, 11)?;
    let prof = profile_plan(&pf.graph, &pf.plan, &base, &opts, 2)?;
    let mut bad = check_profile("serial", &prof, pf.plan.steps.len());

    let popts = ParallelOptions {
        threads: 4,
        ..ParallelOptions::default()
    };
    let par = profile_plan_parallel(&pf.graph, &pf.plan, &pf.cert, &base, &opts, &popts, 2)?;
    bad.extend(check_profile("parallel", &par, pf.plan.steps.len()));
    if par.waves().count() != pf.cert.waves.len() {
        bad.push(format!(
            "parallel: profiled {} of {} waves",
            par.waves().count(),
            pf.cert.waves.len()
        ));
    }

    let r = reselection(&pf.graph, &pf.plan, &opts)?;
    if r.best_us() > r.natural_us() {
        bad.push(format!(
            "re-selection: adopted {:.1} µs is worse than natural {:.1} µs",
            r.best_us(),
            r.natural_us()
        ));
    }

    // the certified unchecked twins must not regress: at least one
    // memory-bound kernel class must achieve strictly higher bandwidth
    // than its checked fallback on the licensed (unit-stride) pattern
    let rows = bandwidth_rows();
    if !rows.iter().any(|r| r.unchecked_gbps() > r.checked_gbps()) {
        bad.push(format!(
            "unchecked twins: no kernel class beat its checked fallback ({})",
            rows.iter()
                .map(|r| format!("{} {:.2}x", r.kernel, r.speedup()))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    // the arena's zero-allocation steady state is a hard gate — for the
    // element-wise-fused plan AND the epilogue mega-kernel plan
    for (exec, kind) in [
        (Executor::Fused, interp::PlanKind::EncoderFused),
        (Executor::Epilogue, interp::PlanKind::EncoderEpilogue),
    ] {
        for row in arena_rows(exec, kind)? {
            if row.events != 0 {
                bad.push(format!(
                    "arena ({exec:?}, {}, {} threads): {} heap event(s) across {STEADY_CALLS} \
                     steady-state forward_into calls (must be 0)",
                    row.tag, row.threads, row.events
                ));
            }
        }
    }

    // the GEMM-epilogue acceptance gate: on every profiled traffic shape
    // the epilogue plan must move strictly fewer measured bytes and must
    // not be slower than its unfused counterpart (modulo runner noise;
    // full REPS here — per-step times are min-merged, so more reps only
    // de-noise the wall-clock gate)
    for d in duels(REPS)? {
        if d.epilogue.bytes >= d.unfused.bytes {
            bad.push(format!(
                "epilogue duel ({}): measured {} bytes, not below the unfused plan's {}",
                d.shape, d.epilogue.bytes, d.unfused.bytes
            ));
        }
        if d.epilogue.us > d.unfused.us * DUEL_TIME_SLACK {
            bad.push(format!(
                "epilogue duel ({}): measured {:.1} µs, slower than the unfused \
                 plan's {:.1} µs (slack {DUEL_TIME_SLACK}x)",
                d.shape, d.epilogue.us, d.unfused.us
            ));
        }
    }

    // the streaming decode gates: zero heap events per steady-state step,
    // nonzero throughput, and a sane measured MUE for the attend-step plan
    let db = decode_bench(2)?;
    if db.allocs_per_step != 0.0 {
        bad.push(format!(
            "decode: {:.2} heap event(s) per steady-state step (must be 0)",
            db.allocs_per_step
        ));
    }
    if !(db.decode_us > 0.0 && db.decode_tokens_per_s() > 0.0) {
        bad.push(format!(
            "decode: non-positive throughput ({:.1} µs over {} steps)",
            db.decode_us, db.steps
        ));
    }
    if !(db.step_mue > 0.0 && db.step_mue <= 100.0) {
        bad.push(format!(
            "decode: attend-step measured MUE {} outside (0, 100]",
            db.step_mue
        ));
    }

    // the cache model's empirical gate: on the LLC-busting validation
    // shapes, predicted DRAM bytes must bracket the profiler's measured
    // byte account within tolerance on both memory-bound normalization
    // classes (softmax and layernorm)
    let (rows, llc) = dram_rows(2)?;
    let gated: Vec<&DramRow> = rows
        .iter()
        .filter(|r| r.measured_bytes >= 4 * llc)
        .collect();
    for r in &gated {
        if (r.ratio() - 1.0).abs() > DRAM_VALIDATION_TOL {
            bad.push(format!(
                "dram validation ({}, {}): predicted {} bytes vs measured {} \
                 (ratio {:.2}, tolerance ±{DRAM_VALIDATION_TOL})",
                r.shape,
                r.step,
                r.predicted_bytes,
                r.measured_bytes,
                r.ratio()
            ));
        }
    }
    for (class, hit) in [
        ("softmax", gated.iter().any(|r| r.step == "SM")),
        ("layernorm", gated.iter().any(|r| r.step.contains("LN"))),
    ] {
        if !hit {
            bad.push(format!(
                "dram validation: no LLC-busting {class}-class step was gated \
                 ({} gated rows of {})",
                gated.len(),
                rows.len()
            ));
        }
    }

    if bad.is_empty() {
        println!(
            "plan_profile --check: OK — {} steps profiled serial+parallel, \
             re-selected total {:.1} µs ≤ natural {:.1} µs, \
             {} DRAM predictions within ±{:.0}%, \
             0 steady-state arena allocations, \
             decode {:.0} tokens/s at 0 allocs/step",
            pf.plan.steps.len(),
            r.best_us(),
            r.natural_us(),
            gated.len(),
            DRAM_VALIDATION_TOL * 100.0,
            db.decode_tokens_per_s(),
        );
        Ok(())
    } else {
        for b in &bad {
            eprintln!("FAIL: {b}");
        }
        Err(format!("{} profiler check(s) failed", bad.len()).into())
    }
}

/// Minimal JSON string escaping for the hand-rolled emitter (keys and
/// values here are ASCII identifiers, but stay safe anyway).
fn jstr(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Writes `BENCH_plan_profile.json`: the machine-readable mirror of the
/// profile — per-plan per-class measured MUE and achieved bandwidth,
/// arena slab bytes and allocs/call per granularity, the checked vs
/// unchecked kernel bandwidth scoreboard, and the fused-vs-epilogue
/// duels — so the perf trajectory is tracked across PRs.
fn json() -> Result<(), Box<dyn std::error::Error>> {
    let dims = dims();
    // decode attend-step shape: one query column against a cache bucket
    // of 32 positions, matching `decode_bench`'s session capacity
    let step_dims = EncoderDims {
        b: dims.b,
        j: 1,
        k: 32,
        h: dims.h,
        p: dims.p,
        i: dims.i,
        u: dims.u,
    };
    let mut plans = Vec::new();
    for (key, kind, d) in [
        ("encoder-fused", interp::PlanKind::EncoderFused, &dims),
        ("encoder-epilogue", interp::PlanKind::EncoderEpilogue, &dims),
        ("decoder-fused", interp::PlanKind::DecoderFused, &dims),
        ("decoder-epilogue", interp::PlanKind::DecoderEpilogue, &dims),
        ("decoder-prefill", interp::PlanKind::DecoderPrefill, &dims),
        (
            "decoder-step-project",
            interp::PlanKind::DecoderStepProject,
            &EncoderDims { j: 1, k: 1, ..dims },
        ),
        ("decoder-step", interp::PlanKind::DecoderStep, &step_dims),
    ] {
        let pf = interp::cached_plan(d, kind)?;
        let base = random_externals(&pf.graph, &pf.plan, 11)?;
        let prof = profile_plan(&pf.graph, &pf.plan, &base, &ExecOptions::default(), REPS)?;
        let classes: Vec<String> = prof
            .per_class()
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\":{},\"steps\":{},\"time_us\":{:.3},\"moved_bytes\":{},\
                     \"achieved_gbps\":{:.4},\"measured_mue\":{:.4}}}",
                    jstr(class_tag(c.class)),
                    c.steps,
                    c.time_us,
                    c.moved_bytes,
                    c.moved_bytes as f64 / 1e3 / c.time_us.max(1e-9),
                    c.mue.value,
                )
            })
            .collect();
        plans.push(format!(
            "{}:{{\"steps\":{},\"total_us\":{:.3},\"total_bytes\":{},\"measured_mue\":{:.4},\
             \"per_class\":[{}]}}",
            jstr(key),
            pf.plan.steps.len(),
            prof.total_time_us(),
            prof.total_bytes(),
            prof.plan_mue().value,
            classes.join(","),
        ));
    }

    let mut arena = Vec::new();
    for (exec, kind, key) in [
        (Executor::Fused, interp::PlanKind::EncoderFused, "fused"),
        (
            Executor::Epilogue,
            interp::PlanKind::EncoderEpilogue,
            "epilogue",
        ),
    ] {
        for r in arena_rows(exec, kind)? {
            arena.push(format!(
                "{{\"plan\":{},\"granularity\":{},\"threads\":{},\"slab_bytes\":{},\
                 \"scratch_bytes\":{},\"stats_bytes\":{},\"allocs_per_call\":{:.2}}}",
                jstr(key),
                jstr(r.tag),
                r.threads,
                r.slab_bytes,
                r.scratch_bytes,
                r.stats_bytes,
                r.events as f64 / STEADY_CALLS as f64,
            ));
        }
    }

    let bandwidth: Vec<String> = bandwidth_rows()
        .iter()
        .map(|r| {
            format!(
                "{{\"kernel\":{},\"bytes\":{},\"checked_gbps\":{:.4},\"unchecked_gbps\":{:.4}}}",
                jstr(r.kernel),
                r.bytes,
                r.checked_gbps(),
                r.unchecked_gbps(),
            )
        })
        .collect();

    let duel_rows: Vec<String> = duels(REPS)?
        .iter()
        .map(|d| {
            format!(
                "{{\"shape\":{},\"unfused_us\":{:.3},\"unfused_bytes\":{},\"epilogue_us\":{:.3},\
                 \"epilogue_bytes\":{},\"adopted\":{}}}",
                jstr(&d.shape),
                d.unfused.us,
                d.unfused.bytes,
                d.epilogue.us,
                d.epilogue.bytes,
                jstr(d.adopted()),
            )
        })
        .collect();

    let db = decode_bench(REPS)?;
    let decode = format!(
        "{{\"prompt_tokens\":{},\"steps\":{},\"batch\":{},\"prefill_us\":{:.3},\
         \"decode_us\":{:.3},\"prefill_tokens_per_s\":{:.1},\"decode_tokens_per_s\":{:.1},\
         \"allocs_per_step\":{:.2},\"resident_bytes\":{},\"step_measured_mue\":{:.4}}}",
        db.prompt_tokens,
        db.steps,
        db.batch,
        db.prefill_us,
        db.decode_us,
        db.prefill_tokens_per_s(),
        db.decode_tokens_per_s(),
        db.allocs_per_step,
        db.resident_bytes,
        db.step_mue,
    );

    let (vrows, llc) = dram_rows(REPS)?;
    let dram: Vec<String> = vrows
        .iter()
        .map(|r| {
            format!(
                "{{\"shape\":{},\"step\":{},\"predicted_bytes\":{},\"measured_bytes\":{},\
                 \"time_us\":{:.3},\"gated\":{}}}",
                jstr(&r.shape),
                jstr(&r.step),
                r.predicted_bytes,
                r.measured_bytes,
                r.time_us,
                r.measured_bytes >= 4 * llc,
            )
        })
        .collect();

    let body = format!(
        "{{\"dims\":{{\"b\":{},\"j\":{},\"k\":{},\"h\":{},\"p\":{},\"i\":{},\"u\":{}}},\
         \"plans\":{{{}}},\"arena\":[{}],\"bandwidth\":[{}],\"duels\":[{}],\
         \"decode\":{},\
         \"dram_validation\":{{\"llc_bytes\":{},\"rows\":[{}]}}}}\n",
        dims.b,
        dims.j,
        dims.k,
        dims.h,
        dims.p,
        dims.i,
        dims.u,
        plans.join(","),
        arena.join(","),
        bandwidth.join(","),
        duel_rows.join(","),
        decode,
        llc,
        dram.join(","),
    );
    let path = "BENCH_plan_profile.json";
    std::fs::write(path, &body)?;
    println!("wrote {path} ({} bytes)", body.len());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::parse(
        "plan_profile",
        "runtime plan profiling: measured MUE, epilogue duels, decode throughput, \
         profile-guided re-selection",
        &[CHECK, JSON],
    );
    if cli.has(CHECK.name) {
        check()
    } else if cli.has(JSON.name) {
        json()
    } else {
        full()
    }
}
