//! End-to-end plan-driven execution on real CPU kernels: times the two
//! canned schedules (Reference, Fused) against a plan lowered from the
//! full recipe — CPU-measured sweeps → SSSP layout selection →
//! [`ExecutionPlan::lower`] — all running through the same schedule
//! interpreter. This is the paper's punchline made concrete: the selected
//! configuration is not a report, it executes.
//!
//! A second section exercises the certificate-gated wave-parallel
//! interpreter (`xform_core::sanitize::execute_plan_parallel`): the fused
//! encoder forward at 1/2/4/8 worker threads (every run bitwise-equal to
//! the serial interpreter with dropout off), then a deliberately wide
//! synthetic plan — independent matmuls feeding a residual reduction
//! tree — where wave parallelism must deliver a real speedup.

use std::time::Instant;

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_core::cpusource::CpuSource;
use xform_core::plan::{execute_plan, random_externals, ExecOptions, ExecutionPlan, PlanOverride};
use xform_core::sanitize::{certify, execute_plan_parallel, ParallelOptions};
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SweepOptions};
use xform_dataflow::{DataRole, EncoderDims, Graph, NodeId, OpKind};
use xform_gpusim::DeviceSpec;
use xform_tensor::{Shape, Tensor};
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::interp;
use xform_transformer::params::EncoderWeights;

const REPS: usize = 5;

/// A deliberately wave-wide schedule: `lanes` independent `ab,bc->ac`
/// matmuls (each `n×n×n`; a single unbatched GEMM never splits across
/// cores, so every kernel stays on its calling thread and all measured
/// parallelism comes from the wave dispatcher) feeding a binary residual
/// reduction tree. Wave 0 is `lanes` steps wide, so the wave-parallel
/// interpreter has real work to distribute.
fn wide_matmul_plan(lanes: usize, n: usize) -> (Graph, ExecutionPlan) {
    let mut g = Graph::new();
    let shape2 = |x: char, y: char| Shape::new([(x, n), (y, n)]).expect("square shape");
    let mut ops: Vec<NodeId> = Vec::new();
    let mut level: Vec<NodeId> = (0..lanes)
        .map(|l| {
            let a = g.add_data(format!("a{l}"), shape2('a', 'b'), DataRole::Input);
            let b = g.add_data(format!("b{l}"), shape2('b', 'c'), DataRole::Input);
            let c = g.add_data(format!("c{l}"), shape2('a', 'c'), DataRole::Activation);
            ops.push(g.add_op(
                format!("mm{l}"),
                OpKind::Einsum("ab,bc->ac".parse().expect("valid einsum")),
                &[a, b],
                &[c],
            ));
            c
        })
        .collect();
    let mut round = 0usize;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .enumerate()
            .map(|(i, pair)| {
                let role = if level.len() == 2 {
                    DataRole::Output
                } else {
                    DataRole::Activation
                };
                let s = g.add_data(format!("s{round}_{i}"), shape2('a', 'c'), role);
                ops.push(g.add_op(
                    format!("add{round}_{i}"),
                    OpKind::Residual,
                    &[pair[0], pair[1]],
                    &[s],
                ));
                s
            })
            .collect();
        round += 1;
    }
    let plan = ExecutionPlan::natural(&g, &ops).expect("wide plan schedules");
    (g, plan)
}

/// Minimum wall-clock of `reps` runs of `f`, in milliseconds.
fn time_ms<F: FnMut() -> Tensor>(reps: usize, mut f: F) -> (f64, Tensor) {
    let mut best = f64::INFINITY;
    let mut last = f();
    for _ in 0..reps {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims {
        b: 2,
        j: 24,
        k: 24,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    };
    println!(
        "plan-driven execution, dims i={} j={} b={} h={} p={} u={} ({REPS} reps, min reported)",
        dims.i, dims.j, dims.b, dims.h, dims.p, dims.u
    );

    let mut rng = StdRng::seed_from_u64(42);
    let w = EncoderWeights::init(&dims, &mut rng);
    let x = Tensor::random(
        Shape::from_spec("ibj", &dims.size_table())?,
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );

    // the two canned schedules (dropout off so all three paths agree)
    let reference = EncoderLayer::new(dims, Executor::Reference, 0.0);
    let fused = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let fwd_opts = ExecOptions::builder().seed(7).build();
    let (ref_ms, y_ref) = time_ms(REPS, || {
        reference
            .forward(&x, &w, &fwd_opts)
            .expect("reference forward")
            .y
    });
    let (fus_ms, y_fus) = time_ms(REPS, || {
        fused.forward(&x, &w, &fwd_opts).expect("fused forward").y
    });

    // the recipe: fuse, sweep every kernel on this CPU, select layouts
    // along the shortest path, lower the selection to a schedule
    let planned = interp::encoder_fused(&dims)?;
    let graph = planned.graph;
    // the canned plan already schedules exactly the forward operators
    let fwd: Vec<_> = planned.plan.steps.iter().map(|s| s.op).collect();
    let source = CpuSource::new(2);
    println!("sweeping {} forward kernels on this CPU...", fwd.len());
    let sweeps = sweep_all(
        &source,
        &graph,
        SweepOptions {
            max_configs: Some(64),
            ..SweepOptions::default()
        },
    )?;
    let sel = select_forward(&graph, &DeviceSpec::v100(), &fwd, &sweeps)?;
    let plan = ExecutionPlan::lower(&graph, &sel)?;
    println!(
        "selection: {:.1} µs modeled, {} transposes; lowered plan: {} steps, {} relayouts",
        sel.total_us,
        sel.transposes,
        plan.steps.len(),
        plan.relayout_count()
    );

    let sel_opts = fwd_opts
        .to_builder()
        .plan(Some(PlanOverride {
            graph: &graph,
            plan: &plan,
            cert: None,
        }))
        .build();
    let (sel_ms, y_sel) = time_ms(REPS, || {
        fused
            .forward(&x, &w, &sel_opts)
            .expect("plan-driven forward")
            .y
    });

    // logical comparison: the selected plan may materialize `y` in a
    // non-natural layout, so raw-buffer order differs between executors
    let max_dev = |a: &Tensor, b: &Tensor| {
        let mut idx = vec![0usize; a.shape().rank()];
        let mut m = 0.0f64;
        loop {
            let d = (a.data()[a.offset(&idx)] - b.data()[b.offset(&idx)]).abs() as f64;
            m = m.max(d);
            if !a.advance(&mut idx) {
                break;
            }
        }
        m
    };
    println!("\nforward wall-clock (same input, same RNG stream):");
    println!("  reference (unfused, natural layouts)  {ref_ms:>8.3} ms");
    println!("  fused     (canned fused schedule)     {fus_ms:>8.3} ms");
    println!("  selected  (recipe-lowered schedule)   {sel_ms:>8.3} ms");
    println!(
        "\nmax |y_selected - y_reference| = {:.2e}, max |y_fused - y_reference| = {:.2e}",
        max_dev(&y_sel, &y_ref),
        max_dev(&y_fus, &y_ref)
    );
    assert!(
        max_dev(&y_sel, &y_ref) < 1e-4,
        "plan-driven output diverged from the reference executor"
    );
    println!("plan-driven output matches the reference executor.");

    // --- wave-parallel interpreter: encoder thread scaling ---
    let pf = interp::cached_plan(&dims, interp::PlanKind::EncoderFused)?;
    println!(
        "\ncertified wave-parallel forward (fused encoder, {} steps in {} waves):",
        pf.plan.steps.len(),
        pf.cert.waves.len()
    );
    for threads in [1usize, 2, 4, 8] {
        let par_opts = fwd_opts.to_builder().threads(threads).build();
        let (par_ms, y_par) = time_ms(REPS, || {
            fused
                .forward(&x, &w, &par_opts)
                .expect("parallel forward")
                .y
        });
        assert_eq!(
            y_par.data(),
            y_fus.data(),
            "parallel forward diverged from serial at {threads} threads"
        );
        println!("  {threads} thread(s)  {par_ms:>8.3} ms  (bitwise-equal to serial)");
    }

    // --- wave-parallel interpreter: a genuinely wide plan ---
    // The encoder forward is chain-like (narrow waves), so thread scaling
    // above is modest. This synthetic plan is the opposite: its first wave
    // is 8 independent matmuls, and the certifier proves the partition
    // race-free before any thread runs.
    let (wide_g, wide_p) = wide_matmul_plan(8, 128);
    let cert = certify(&wide_g, &wide_p).expect("the wide plan certifies");
    println!(
        "\nwave-parallel speedup on a wide synthetic plan ({} steps in {} waves, widest {}):",
        wide_p.steps.len(),
        cert.waves.len(),
        cert.waves.iter().map(Vec::len).max().unwrap_or(0)
    );
    let wide_opts = ExecOptions::default();
    let base_state = random_externals(&wide_g, &wide_p, 11)?;
    let run_serial = || {
        let mut state = base_state.clone();
        let mut r = StdRng::seed_from_u64(7);
        execute_plan(&wide_g, &wide_p, &mut state, &wide_opts, &mut r).expect("serial wide plan");
        state.get("s2_0").expect("final sum").clone()
    };
    let (serial_ms, y_wide) = time_ms(REPS, run_serial);
    println!("  serial          {serial_ms:>8.3} ms");
    let mut speedup_at_4 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let popts = ParallelOptions {
            threads,
            ..ParallelOptions::default()
        };
        let (par_ms, y_par) = time_ms(REPS, || {
            let mut state = base_state.clone();
            execute_plan_parallel(&wide_g, &wide_p, &cert, &mut state, &wide_opts, &popts)
                .expect("parallel wide plan");
            state.get("s2_0").expect("final sum").clone()
        });
        assert_eq!(
            y_par.data(),
            y_wide.data(),
            "wide plan diverged at {threads} threads"
        );
        let speedup = serial_ms / par_ms;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        println!("  {threads} thread(s)  {par_ms:>8.3} ms  ({speedup:.2}x vs serial)");
    }
    let cores = std::thread::available_parallelism().map_or(1, |t| t.get());
    if cores >= 4 {
        assert!(
            speedup_at_4 > 1.5,
            "expected >1.5x at 4 threads on the wide plan, measured {speedup_at_4:.2}x"
        );
        println!("wave parallelism delivers {speedup_at_4:.2}x at 4 threads (threshold 1.5x).");
    } else {
        println!(
            "host exposes {cores} core(s); the >1.5x @ 4 threads check needs >=4 — \
             results above are correctness-only (every run stayed bitwise-equal)."
        );
    }
    Ok(())
}
