//! End-to-end plan-driven execution on real CPU kernels: times the two
//! canned schedules (Reference, Fused) against a plan lowered from the
//! full recipe — CPU-measured sweeps → SSSP layout selection →
//! [`ExecutionPlan::lower`] — all running through the same schedule
//! interpreter. This is the paper's punchline made concrete: the selected
//! configuration is not a report, it executes.

use std::time::Instant;

use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xform_core::cpusource::CpuSource;
use xform_core::plan::ExecutionPlan;
use xform_core::selection::select_forward;
use xform_core::sweep::{sweep_all, SweepOptions};
use xform_dataflow::EncoderDims;
use xform_gpusim::DeviceSpec;
use xform_tensor::{Shape, Tensor};
use xform_transformer::encoder::{EncoderLayer, Executor};
use xform_transformer::interp;
use xform_transformer::params::EncoderWeights;

const REPS: usize = 5;

/// Minimum wall-clock of `reps` runs of `f`, in milliseconds.
fn time_ms<F: FnMut() -> Tensor>(reps: usize, mut f: F) -> (f64, Tensor) {
    let mut best = f64::INFINITY;
    let mut last = f();
    for _ in 0..reps {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims {
        b: 2,
        j: 24,
        k: 24,
        h: 2,
        p: 8,
        i: 16,
        u: 32,
    };
    println!(
        "plan-driven execution, dims i={} j={} b={} h={} p={} u={} ({REPS} reps, min reported)",
        dims.i, dims.j, dims.b, dims.h, dims.p, dims.u
    );

    let mut rng = StdRng::seed_from_u64(42);
    let w = EncoderWeights::init(&dims, &mut rng);
    let x = Tensor::random(
        Shape::from_spec("ibj", &dims.size_table())?,
        &Uniform::new(-1.0, 1.0),
        &mut rng,
    );

    // the two canned schedules (dropout off so all three paths agree)
    let reference = EncoderLayer::new(dims, Executor::Reference, 0.0);
    let fused = EncoderLayer::new(dims, Executor::Fused, 0.0);
    let (ref_ms, y_ref) = time_ms(REPS, || {
        let mut r = StdRng::seed_from_u64(7);
        reference
            .forward(&x, &w, &mut r)
            .expect("reference forward")
            .0
    });
    let (fus_ms, y_fus) = time_ms(REPS, || {
        let mut r = StdRng::seed_from_u64(7);
        fused.forward(&x, &w, &mut r).expect("fused forward").0
    });

    // the recipe: fuse, sweep every kernel on this CPU, select layouts
    // along the shortest path, lower the selection to a schedule
    let planned = interp::encoder_fused(&dims)?;
    let graph = planned.graph;
    // the canned plan already schedules exactly the forward operators
    let fwd: Vec<_> = planned.plan.steps.iter().map(|s| s.op).collect();
    let source = CpuSource::new(2);
    println!("sweeping {} forward kernels on this CPU...", fwd.len());
    let sweeps = sweep_all(
        &source,
        &graph,
        SweepOptions {
            max_configs: Some(64),
            ..SweepOptions::default()
        },
    )?;
    let sel = select_forward(&graph, &DeviceSpec::v100(), &fwd, &sweeps)?;
    let plan = ExecutionPlan::lower(&graph, &sel)?;
    println!(
        "selection: {:.1} µs modeled, {} transposes; lowered plan: {} steps, {} relayouts",
        sel.total_us,
        sel.transposes,
        plan.steps.len(),
        plan.relayout_count()
    );

    let (sel_ms, y_sel) = time_ms(REPS, || {
        let mut r = StdRng::seed_from_u64(7);
        fused
            .forward_with_plan(&graph, &plan, &x, &w, &mut r)
            .expect("plan-driven forward")
            .0
    });

    // logical comparison: the selected plan may materialize `y` in a
    // non-natural layout, so raw-buffer order differs between executors
    let max_dev = |a: &Tensor, b: &Tensor| {
        let mut idx = vec![0usize; a.shape().rank()];
        let mut m = 0.0f64;
        loop {
            let d = (a.data()[a.offset(&idx)] - b.data()[b.offset(&idx)]).abs() as f64;
            m = m.max(d);
            if !a.advance(&mut idx) {
                break;
            }
        }
        m
    };
    println!("\nforward wall-clock (same input, same RNG stream):");
    println!("  reference (unfused, natural layouts)  {ref_ms:>8.3} ms");
    println!("  fused     (canned fused schedule)     {fus_ms:>8.3} ms");
    println!("  selected  (recipe-lowered schedule)   {sel_ms:>8.3} ms");
    println!(
        "\nmax |y_selected - y_reference| = {:.2e}, max |y_fused - y_reference| = {:.2e}",
        max_dev(&y_sel, &y_ref),
        max_dev(&y_fus, &y_ref)
    );
    assert!(
        max_dev(&y_sel, &y_ref) < 1e-4,
        "plan-driven output diverged from the reference executor"
    );
    println!("plan-driven output matches the reference executor.");
    Ok(())
}
