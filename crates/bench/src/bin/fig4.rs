//! Fig. 4 reproduction: runtime distributions over all data layouts for
//! every tensor contraction in encoder training, for tensor cores and for
//! half-precision FPUs.

use std::collections::BTreeMap;

use xform_bench::Distribution;
use xform_dataflow::{build, EncoderDims, OpKind};
use xform_gpusim::contraction::{algorithms, all_layouts, gemm_cost, GemmShape, MathMode};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let dims = EncoderDims::bert_large();
    let g = build::encoder(&dims).graph;

    // group contractions by GEMM shape, like the figure's tiles
    let mut tiles: BTreeMap<(usize, usize, usize, usize), Vec<String>> = BTreeMap::new();
    for op in g.ops() {
        let node = g.op(op).expect("live");
        let OpKind::Einsum(spec) = &node.kind else {
            continue;
        };
        let inputs = g.inputs_of(op);
        let a = &g.data(inputs[0]).expect("data").shape;
        let b = &g.data(inputs[1]).expect("data").shape;
        let s = spec.gemm_sizes(a, b)?;
        // the figure labels tiles with M ≥ N
        let (m, n) = if s.m >= s.n { (s.m, s.n) } else { (s.n, s.m) };
        tiles
            .entry((m, n, s.k, s.batch))
            .or_default()
            .push(node.name.clone());
    }

    println!(
        "Fig. 4: tensor contraction performance over all layouts and algorithms\n\
         (tensor-core peak 125 Tflop/s; FP16 peak 31.4 Tflop/s)\n"
    );
    for ((m, n, k, batch), ops) in tiles {
        let shape = GemmShape { batch, m, n, k };
        println!("{}", ops.join(", "));
        println!("  M: {m}, N: {n}, K: {k}, B: {batch}");
        for math in [MathMode::TensorCore, MathMode::Fp16] {
            let mut times = Vec::new();
            for layout in all_layouts() {
                for algo in algorithms() {
                    times.push(gemm_cost(&device, shape, layout, algo, math).time_us / 1000.0);
                }
            }
            let d = Distribution::from_times(&times);
            let label = match math {
                MathMode::TensorCore => "Tensor Cores",
                MathMode::Fp16 => "16-bit FPUs ",
            };
            println!(
                "  {label}  best: {:.2} ms  worst: {:.2} ms  median: {:.2} ms  {}",
                d.best,
                d.worst,
                d.median,
                d.sparkline(&times, 24)
            );
        }
        println!();
    }
    println!(
        "Tensor cores win on large GEMMs; where a dimension is 64 they fail to\n\
         saturate and FP16 FPUs come close — as the paper observes (Sec. V-A)."
    );
    Ok(())
}
