//! Sec. VIII "beyond BERT": the identical recipe applied to a GPT-2-style
//! decoder block (pre-layer-norm, causally masked self-attention, GELU).
//! The paper argues only the dataflow graph changes; the recipe does not.

use xform_bench::TablePrinter;
use xform_core::fusion::{apply_plan, decoder_fusion_plan};
use xform_core::recipe::{optimize_decoder, optimize_encoder, RecipeOptions};
use xform_dataflow::{analysis, build, EncoderDims};
use xform_gpusim::framework::{execute, FrameworkPolicy};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();

    let unfused = build::decoder(&dims).graph;
    let pt = execute(&unfused, &device, &FrameworkPolicy::pytorch())?;
    let mut fused = build::decoder(&dims).graph;
    apply_plan(&mut fused, &decoder_fusion_plan())?;
    let ours = optimize_decoder(&device, &dims, &RecipeOptions::default())?;
    let enc = optimize_encoder(&device, &dims, &RecipeOptions::default())?;

    println!("GPT-2-style decoder block (pre-LN, causal, GELU) under the same recipe\n");
    let mut t = TablePrinter::new(&["", "PyTorch model", "Ours (recipe)", "speedup"]);
    t.row(&[
        "decoder fwd+bwd (ms)".into(),
        format!("{:.2}", pt.total_us / 1000.0),
        format!("{:.2}", ours.total_us() / 1000.0),
        format!("{:.2}×", pt.total_us / ours.total_us()),
    ]);
    t.print();
    println!(
        "\nmovement reduction from the decoder fusion plan: {:.1}%",
        analysis::movement_reduction_pct(&unfused, &fused)
    );
    println!(
        "decoder vs encoder optimized totals: {:.2} ms vs {:.2} ms\n\
         (same contractions; pre-LN shifts which element-wise chains fuse)",
        ours.total_us() / 1000.0,
        enc.total_us() / 1000.0
    );
    println!(
        "selection: {:.1}% above the per-op lower bound with {} transposes",
        100.0 * (ours.selection.total_us / ours.selection.per_op_best_us - 1.0),
        ours.selection.transposes
    );
    Ok(())
}
