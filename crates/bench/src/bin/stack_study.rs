//! Stacked-layer selection: when optimized layers are stacked into a full
//! network (Sec. VI-C), layer N's output layout constrains layer N+1's
//! input. Chained shortest-path selection settles into a steady-state
//! interior configuration after the first boundary, so a deep network pays
//! at most one boundary adjustment — stacking is essentially free.

use xform_bench::TablePrinter;
use xform_core::fusion::{apply_plan, encoder_fusion_plan};
use xform_core::recipe::forward_ops;
use xform_core::selection::{select_forward, select_stacked};
use xform_core::sweep::{sweep_all, SimulatorSource, SweepOptions};
use xform_dataflow::{build, EncoderDims};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = EncoderDims::bert_large();
    let device = DeviceSpec::v100();
    let mut g = build::encoder(&dims).graph;
    apply_plan(&mut g, &encoder_fusion_plan())?;
    let src = SimulatorSource {
        device: device.clone(),
    };
    let sweeps = sweep_all(
        &src,
        &g,
        SweepOptions {
            max_configs: Some(30_000),
            ..SweepOptions::default()
        },
    )?;
    let fwd = forward_ops(&g, g.data_by_name("dy").expect("dy"));

    let layers = 24; // BERT-large depth
    let stack = select_stacked(&g, &device, &fwd, &sweeps, layers)?;
    let single = select_forward(&g, &device, &fwd, &sweeps)?;

    println!("Chained layout selection across a {layers}-layer stack (forward, µs)\n");
    let mut t = TablePrinter::new(&["layer", "selected µs", "transposes"]);
    for (i, (us, sel)) in stack
        .per_layer_us
        .iter()
        .zip(&stack.layers)
        .enumerate()
        .take(4)
    {
        t.row(&[
            i.to_string(),
            format!("{us:.0}"),
            sel.transposes.to_string(),
        ]);
    }
    t.row(&["…".into(), "…".into(), "…".into()]);
    let last = stack.per_layer_us.last().expect("non-empty");
    t.row(&[
        (layers - 1).to_string(),
        format!("{last:.0}"),
        String::new(),
    ]);
    t.print();
    println!(
        "\nsteady state from layer {}; stack total {:.0} µs vs {layers}× unconstrained\n\
         single-layer optimum {:.0} µs ({:+.2}%) — stacking optimized layers costs\n\
         at most one boundary adjustment, so per-layer results compose to full\n\
         networks, as the paper asserts.",
        stack.steady_state_from,
        stack.total_us,
        layers as f64 * single.total_us,
        100.0 * (stack.total_us / (layers as f64 * single.total_us) - 1.0)
    );
    Ok(())
}
