//! Table III reproduction: per-operator flop, I/O, time, % peak, MUE and
//! speedup for the PyTorch baseline vs our fused + layout-selected
//! implementation.

use xform_bench::TablePrinter;
use xform_core::recipe::RecipeOptions;
use xform_core::report::table3;
use xform_dataflow::{EncoderDims, OpClass};
use xform_gpusim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = DeviceSpec::v100();
    let t3 = table3(
        &device,
        &EncoderDims::bert_large(),
        &RecipeOptions::default(),
    )?;
    println!("Table III: flop analysis for a BERT-large encoder layer (fwd + bwd)\n");
    let mut t = TablePrinter::new(&[
        "kernel", "members", "cls", "Gflop", "in(M)", "out(M)", "PT µs", "ours µs", "% peak",
        "MUE", "speedup",
    ]);
    for r in &t3.rows {
        t.row(&[
            r.kernel.clone(),
            if r.members.len() > 1 {
                format!("{} ops", r.members.len())
            } else {
                "-".into()
            },
            r.class.glyph().to_string(),
            format!("{:.3}", r.gflop),
            format!("{:.1}", r.input_mw),
            format!("{:.1}", r.output_mw),
            format!("{:.0}", r.pytorch_us),
            format!("{:.0}", r.ours_us),
            format!("{:.1}", r.ours_pct_peak),
            format!("{:.0}", r.mue),
            format!("{:.2}", r.speedup),
        ]);
    }
    t.print();
    println!("\nclass totals (µs):");
    let paper = [
        (OpClass::TensorContraction, 4951.0, 4411.0),
        (OpClass::StatisticalNormalization, 2063.0, 1591.0),
        (OpClass::Elementwise, 1096.0, 735.0),
    ];
    let mut ct = TablePrinter::new(&[
        "class",
        "PT µs (paper)",
        "PT µs (ours)",
        "opt µs (paper)",
        "opt µs (ours)",
    ]);
    for ((class, p, o), (pc, pp, po)) in t3.class_totals.iter().zip(paper) {
        assert_eq!(*class, pc);
        ct.row(&[
            format!("{} {class}", class.glyph()),
            format!("{pp:.0}"),
            format!("{p:.0}"),
            format!("{po:.0}"),
            format!("{o:.0}"),
        ]);
    }
    ct.print();
    println!(
        "\ntotal: PT {:.0} µs vs ours {:.0} µs — {:.2}× kernel speedup (paper: 8110 vs 6739, 1.20×)",
        t3.totals.0,
        t3.totals.1,
        t3.totals.0 / t3.totals.1
    );
    println!(
        "data-movement reduction from fusion: {:.1}% (paper: ~22.91%)",
        t3.movement_reduction_pct
    );
    Ok(())
}
