//! Vendored, API-compatible subset of the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the one crossbeam facility it uses: scoped threads
//! ([`scope`] / [`thread::scope`]), backed by `std::thread::scope`
//! (stable since Rust 1.63, which postdates crossbeam's scoped-thread
//! design and provides the same borrow-from-the-stack guarantee).

pub mod thread {
    //! Scoped threads, mirroring `crossbeam::thread`.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Spawns scoped threads that may borrow from the caller's stack.
    ///
    /// Returns `Err` with the panic payload if the closure or any
    /// unjoined spawned thread panicked (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    /// Handle for spawning further threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing [`scope`] call. The
        /// closure receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Owned handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn panic_in_spawned_thread_is_err() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            // Leave unjoined: std::thread::scope re-raises on exit and
            // our wrapper converts that into Err.
            drop(h);
        });
        assert!(r.is_err());
    }
}
