//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the small slice of `rand` 0.8 it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`distributions::Uniform`].
//!
//! The generator is SplitMix64 — statistically solid for test workloads
//! and fully deterministic per seed, which is all the workspace relies on
//! (seeded reproducibility, not cryptographic quality).

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is negligible for the spans used here
                // (test dimensions, seeds), all far below 2^64.
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                low + <$t as Standard>::from_rng(rng) * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(range.start, range.end, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so consecutive seeds produce unrelated streams.
            let mut rng = StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    //! Distributions over `f32`/`f64`, mirroring `rand::distributions`.

    use super::{RngCore, SampleUniform};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Builds the uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: low >= high");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<f32>().to_bits(), b.gen::<f32>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_respects_bounds_and_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new(-1.0f32, 1.0);
        let draws: Vec<f32> = (0..4096).map(|_| dist.sample(&mut rng)).collect();
        assert!(draws.iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(draws.iter().any(|v| *v < -0.5));
        assert!(draws.iter().any(|v| *v > 0.5));
        let mean: f32 = draws.iter().sum::<f32>() / draws.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
    }

    #[test]
    fn gen_range_over_ints() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn unit_f32_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f32 = (0..8192).map(|_| rng.gen::<f32>()).sum::<f32>() / 8192.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
