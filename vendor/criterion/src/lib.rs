//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of criterion its benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group` / `bench_with_input`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical engine, each benchmark is
//! warmed up, then timed over `sample_size` samples whose iteration
//! counts target `measurement_time`; the per-iteration median, min, and
//! max are printed in a criterion-like one-line format.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a calibration of how many iterations fit in one
        // sample so short routines are not dominated by timer overhead.
        let warm_start = Instant::now();
        let mut iters_per_sample = 0u64;
        while warm_start.elapsed() < self.warm_up_time || iters_per_sample == 0 {
            black_box(routine());
            iters_per_sample += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_per_sample as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the parent's settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.parent.bencher();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.parent.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Finishes the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        let input = 17u64;
        g.bench_with_input(BenchmarkId::new("x", "17"), &input, |b, i| {
            b.iter(|| black_box(*i * 2))
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
