//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of proptest it uses: the [`proptest!`] macro over
//! `name in strategy` arguments, range/tuple/`prop_map`/`vec`/`any`
//! strategies, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream are deliberate and small: inputs are drawn
//! from a deterministic per-test generator (seeded from the test's name,
//! so failures reproduce exactly on re-run) and failing cases are
//! reported without shrinking.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String strategies from regex-like patterns of the shape
    /// `[class]{m,n}` (character classes with ranges and literals, e.g.
    /// `"[a-f,>-]{1,4}"`); any other pattern generates itself literally.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let (class, min, max) = match parse_class_repeat(self) {
                Some(p) => p,
                None => return (*self).to_string(),
            };
            let len = if min == max {
                min
            } else {
                rng.gen_range(min..max + 1)
            };
            (0..len)
                .map(|_| class[rng.gen_range(0..class.len())])
                .collect()
        }
    }

    /// Parses `[class]{m,n}` into (expanded class, m, n); `None` if the
    /// pattern has a different shape.
    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class_src, rep) = rest.split_once(']')?;
        let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match rep.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = rep.parse().ok()?;
                (n, n)
            }
        };
        let chars: Vec<char> = class_src.chars().collect();
        let mut class = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            // `x-y` is a range unless `-` is the final character.
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                for c in chars[i]..=chars[i + 2] {
                    class.push(c);
                }
                i += 3;
            } else {
                class.push(chars[i]);
                i += 1;
            }
        }
        if class.is_empty() {
            return None;
        }
        Some((class, min, max))
    }

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            // Finite, sign-balanced, spanning several orders of magnitude.
            let mag = rng.gen::<f32>() * 2000.0 - 1000.0;
            mag / (1.0 + rng.gen::<f32>() * 99.0)
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// How many cases each property runs, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; tests here are CPU-heavy numeric
            // kernels, so keep the unconfigured default moderate.
            Config { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Internals used by the macros; not part of the public API.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed: FNV-1a over the test's full name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0..9) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __config: $crate::test_runner::Config = $cfg;
                let __seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __rng =
                    <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
                for __case in 0..__config.cases {
                    let __vals = ( $( ($strat).generate(&mut __rng), )+ );
                    let __inputs = format!(
                        concat!("case {} of ", stringify!($name), ": ",
                                stringify!(($($arg),+)), " = {:?}, seed = {}"),
                        __case, &__vals, __seed
                    );
                    #[allow(unused_parens)]
                    let ( $($arg),+ ,) = __vals;
                    #[allow(unused_mut)]
                    let mut __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        return Ok(());
                    };
                    if let Err(__msg) = __run() {
                        panic!("proptest failure: {__msg}\n  minimal-repro inputs: {__inputs}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

pub mod prelude {
    //! One-stop import for property tests.

    pub use crate::collection;
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn prop_map_applies(v in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&v));
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert_eq!(b as u8 > 1, false);
        }

        #[test]
        fn string_pattern_respects_class_and_len(s in "[a-c,>-]{0,6}") {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c) || ",>-".contains(c)));
        }
    }
}
